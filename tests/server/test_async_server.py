"""AsyncRMIServer: concurrency, limits, auth, TLS, drain, isolation."""

import contextlib
import os
import threading
import time

import pytest

from repro.core.errors import RemoteError
from repro.ip import component
from repro.rmi import (JavaCADServer, RemoteStub, TcpTransport,
                       client_ssl_context, server_ssl_context,
                       wrap_transport)
from repro.server import AsyncRMIServer, ServerStats
from repro.telemetry import TELEMETRY

TLS_DIR = os.path.join(os.path.dirname(__file__), os.pardir, "data",
                       "tls")
CERT = os.path.join(TLS_DIR, "server.pem")
KEY = os.path.join(TLS_DIR, "server.key")


class Echo:
    """A minimal servant with a pure call and a slow call."""

    def ping(self, value):
        return value * 2

    def slow(self, value, seconds=0.2):
        time.sleep(seconds)
        return value

    def boom(self):
        raise ValueError("servant fault")


class SessionIds:
    """Exposes one of the global id counters the gate isolates."""

    def next_session_id(self):
        return next(component._session_ids)


def echo_session():
    server = JavaCADServer("async.session")
    server.bind("echo", Echo(), ["ping", "slow", "boom"])
    server.bind("ids", SessionIds(), ["next_session_id"])
    return server


@contextlib.contextmanager
def running(**options):
    server = AsyncRMIServer(session_factory=echo_session, **options)
    host, port = server.start()
    try:
        yield server, host, port
    finally:
        server.stop()


@contextlib.contextmanager
def connected(host, port, **options):
    transport = TcpTransport(host, port, **options)
    try:
        yield transport
    finally:
        transport.close()


class TestConstruction:
    def test_requires_exactly_one_core(self):
        with pytest.raises(ValueError):
            AsyncRMIServer()
        with pytest.raises(ValueError):
            AsyncRMIServer(JavaCADServer("x"),
                           session_factory=echo_session)

    def test_rejects_silly_limits(self):
        with pytest.raises(ValueError):
            AsyncRMIServer(session_factory=echo_session,
                           max_connections=0)

    def test_double_start_refused(self):
        with running() as (server, _host, _port):
            with pytest.raises(RemoteError):
                server.start()

    def test_stop_is_idempotent(self):
        server = AsyncRMIServer(session_factory=echo_session)
        server.start()
        server.stop()
        server.stop()

    def test_restart_after_stop(self):
        server = AsyncRMIServer(session_factory=echo_session)
        host, port = server.start()
        server.stop()
        host2, port2 = server.start()
        try:
            with connected(host2, port2) as transport:
                assert transport.invoke("echo", "ping", (4,), {}) == 8
        finally:
            server.stop()


class TestDispatch:
    def test_round_trip(self):
        with running() as (_server, host, port):
            with connected(host, port) as transport:
                assert transport.invoke("echo", "ping", (21,), {}) == 42

    def test_servant_errors_travel_as_error_replies(self):
        with running() as (_server, host, port):
            with connected(host, port) as transport:
                with pytest.raises(RemoteError, match="servant fault"):
                    transport.invoke("echo", "boom", (), {})
                # connection survives the error reply
                assert transport.invoke("echo", "ping", (3,), {}) == 6

    def test_unknown_object_is_an_error_reply(self):
        with running() as (_server, host, port):
            with connected(host, port) as transport:
                with pytest.raises(RemoteError, match="not bound"):
                    transport.invoke("nowhere", "ping", (), {})

    def test_batch_frames_dispatch(self):
        with running() as (server, host, port):
            with connected(host, port) as transport:
                stacked = wrap_transport(transport, batching=True,
                                         caching=False)
                stub = RemoteStub(stacked, "echo", ("ping",))
                stub.invoke_oneway("ping", 1)
                stub.invoke_oneway("ping", 2)
                assert stub.ping(5) == 10
            server.stop()
            assert server.stats.batches_served >= 1
            assert server.stats.calls_served >= 3

    def test_many_concurrent_clients(self):
        clients = 8
        with running(max_connections=clients) as (server, host, port):
            barrier = threading.Barrier(clients)
            results = [None] * clients
            failures = []

            def worker(index):
                try:
                    with connected(host, port) as transport:
                        barrier.wait(timeout=5)
                        values = [transport.invoke("echo", "ping",
                                                   (index * 100 + i,), {})
                                  for i in range(5)]
                        results[index] = values
                        barrier.wait(timeout=10)
                except Exception as exc:  # pragma: no cover - diagnostic
                    failures.append(exc)

            threads = [threading.Thread(target=worker, args=(i,))
                       for i in range(clients)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=30)
            assert not failures
            for index in range(clients):
                assert results[index] == [
                    (index * 100 + i) * 2 for i in range(5)]
            assert server.stats.connections_peak == clients


class TestLimitsAndTimeouts:
    def test_over_capacity_connection_refused_with_reason(self):
        with running(max_connections=1) as (server, host, port):
            with connected(host, port) as first:
                assert first.invoke("echo", "ping", (1,), {}) == 2
                with connected(host, port) as second:
                    with pytest.raises(RemoteError,
                                       match="at capacity"):
                        second.invoke("echo", "ping", (2,), {})
            server.stop()
            assert server.stats.connections_refused == 1

    def test_capacity_frees_when_a_tenant_leaves(self):
        with running(max_connections=1) as (_server, host, port):
            with connected(host, port) as first:
                assert first.invoke("echo", "ping", (1,), {}) == 2
            deadline = time.monotonic() + 5
            while True:
                try:
                    with connected(host, port) as second:
                        assert second.invoke("echo", "ping",
                                             (2,), {}) == 4
                    break
                except RemoteError:
                    if time.monotonic() > deadline:  # pragma: no cover
                        raise
                    time.sleep(0.02)

    def test_idle_timeout_drops_the_connection(self):
        with running(idle_timeout=0.2) as (_server, host, port):
            with connected(host, port) as transport:
                assert transport.invoke("echo", "ping", (1,), {}) == 2
                time.sleep(0.6)
                with pytest.raises(RemoteError):
                    transport.invoke("echo", "ping", (2,), {})

    def test_graceful_drain_flushes_in_flight_work(self):
        with running() as (server, host, port):
            answers = []

            def call():
                with connected(host, port) as transport:
                    answers.append(transport.invoke(
                        "echo", "slow", (7,), {"seconds": 0.3}))

            thread = threading.Thread(target=call)
            thread.start()
            time.sleep(0.1)  # the slow dispatch is now in flight
            server.stop()
            thread.join(timeout=5)
            assert answers == [7]
            assert server.stats.drained is True


class TestAuth:
    def test_token_round_trip(self):
        with running(auth_token="sekrit") as (server, host, port):
            with connected(host, port, token="sekrit") as transport:
                assert transport.invoke("echo", "ping", (21,), {}) == 42
            server.stop()
            assert server.stats.auth_failures == 0
            assert server.stats.sessions_started == 1

    def test_wrong_token_never_reaches_dispatch(self):
        shared = echo_session()
        server = AsyncRMIServer(shared, auth_token="sekrit")
        host, port = server.start()
        try:
            with connected(host, port, token="wrong") as transport:
                with pytest.raises(RemoteError,
                                   match="authentication rejected"):
                    transport.invoke("echo", "ping", (1,), {})
        finally:
            server.stop()
        assert server.stats.auth_failures == 1
        assert server.stats.sessions_started == 0
        assert shared.calls_served == 0  # nothing touched dispatch

    def test_missing_token_is_an_auth_failure(self):
        shared = echo_session()
        server = AsyncRMIServer(shared, auth_token="sekrit")
        host, port = server.start()
        try:
            with connected(host, port) as transport:  # no token at all
                with pytest.raises(RemoteError):
                    transport.invoke("echo", "ping", (1,), {})
        finally:
            server.stop()
        assert server.stats.auth_failures == 1
        assert shared.calls_served == 0

    def test_auth_failures_counted_in_telemetry(self):
        TELEMETRY.reset()
        TELEMETRY.enable()
        try:
            with running(auth_token="sekrit",
                         name="auth.test") as (_server, host, port):
                with connected(host, port, token="nope") as transport:
                    with pytest.raises(RemoteError):
                        transport.invoke("echo", "ping", (1,), {})
            counter = TELEMETRY.metrics.get(
                "server.auth.failures", labels={"server": "auth.test"})
            assert counter is not None and counter.value == 1
        finally:
            TELEMETRY.disable()
            TELEMETRY.reset()

    def test_tokenless_server_accepts_token_clients(self):
        with running() as (_server, host, port):
            with connected(host, port, token="anything") as transport:
                assert transport.invoke("echo", "ping", (5,), {}) == 10


class TestMidSessionAuth:
    """AUTH frames after the handshake: counted, but not as calls.

    Client transports exclude AUTH frames from ``rmi.calls``; the
    server symmetrically excludes them from ``calls_served`` and counts
    them as ``auth_refreshes`` instead, so a stack that re-sends AUTH
    mid-session can never make the two sides' call totals disagree.
    """

    @staticmethod
    def _send_auth(transport, token):
        import struct

        from repro.rmi.protocol import AuthRequest, CallReply

        sock = transport._ensure_socket()
        payload = AuthRequest(token).encode()
        sock.sendall(struct.pack(">I", len(payload)) + payload)
        return CallReply.decode(transport._read_frame(sock))

    def test_refresh_is_counted_but_not_a_call(self):
        with running(auth_token="sekrit") as (server, host, port):
            with connected(host, port, token="sekrit") as transport:
                assert transport.invoke("echo", "ping", (1,), {}) == 2
                reply = self._send_auth(transport, "sekrit")
                assert reply.ok
                assert transport.invoke("echo", "ping", (2,), {}) == 4
            server.stop()
        assert server.stats.auth_refreshes == 1
        assert server.stats.auth_failures == 0
        # Both sides agree: 2 calls, the AUTH frames excluded on each.
        assert server.stats.calls_served == 2
        assert transport.stats.calls == 2

    def test_bad_refresh_token_is_an_auth_failure_not_a_call(self):
        with running(auth_token="sekrit") as (server, host, port):
            with connected(host, port, token="sekrit") as transport:
                assert transport.invoke("echo", "ping", (1,), {}) == 2
                reply = self._send_auth(transport, "wrong")
                assert not reply.ok
                assert "authentication" in (reply.error or "")
                # The session keeps its handshake authentication.
                assert transport.invoke("echo", "ping", (3,), {}) == 6
            server.stop()
        assert server.stats.auth_refreshes == 0
        assert server.stats.auth_failures == 1
        assert server.stats.calls_served == 2

    def test_refresh_on_tokenless_server_is_counted_too(self):
        with running() as (server, host, port):
            with connected(host, port) as transport:
                assert transport.invoke("echo", "ping", (1,), {}) == 2
                assert self._send_auth(transport, "whatever").ok
            server.stop()
        assert server.stats.auth_refreshes == 1
        assert server.stats.calls_served == 1

    def test_refresh_telemetry_counter(self):
        TELEMETRY.reset()
        TELEMETRY.enable()
        try:
            with running(auth_token="sekrit",
                         name="auth.refresh") as (_server, host, port):
                with connected(host, port,
                               token="sekrit") as transport:
                    self._send_auth(transport, "sekrit")
            counter = TELEMETRY.metrics.get(
                "server.auth.refreshes",
                labels={"server": "auth.refresh"})
            assert counter is not None and counter.value == 1
        finally:
            TELEMETRY.disable()
            TELEMETRY.reset()


class TestTls:
    def test_tls_round_trip(self):
        context = server_ssl_context(CERT, KEY)
        with running(ssl_context=context) as (_server, host, port):
            with connected(host, port,
                           ssl_context=client_ssl_context(cafile=CERT),
                           server_hostname="localhost") as transport:
                assert transport.invoke("echo", "ping", (21,), {}) == 42

    def test_tls_plus_token(self):
        context = server_ssl_context(CERT, KEY)
        with running(ssl_context=context,
                     auth_token="sekrit") as (server, host, port):
            with connected(host, port, token="sekrit",
                           ssl_context=client_ssl_context(cafile=CERT),
                           server_hostname="localhost") as transport:
                assert transport.invoke("echo", "ping", (3,), {}) == 6
            server.stop()
            assert server.stats.auth_failures == 0

    def test_unverified_client_is_refused_by_tls(self):
        context = server_ssl_context(CERT, KEY)
        with running(ssl_context=context) as (_server, host, port):
            # Default trust store does not contain the test CA.
            with connected(host, port,
                           ssl_context=client_ssl_context(),
                           server_hostname="localhost") as transport:
                with pytest.raises(RemoteError):
                    transport.invoke("echo", "ping", (1,), {})


class TestSessionIsolation:
    def test_each_tenant_sees_fresh_process_ids(self):
        clients = 4
        with running(max_connections=clients) as (_server, host, port):
            barrier = threading.Barrier(clients)
            results = [None] * clients
            failures = []

            def worker(index):
                try:
                    with connected(host, port) as transport:
                        barrier.wait(timeout=5)
                        results[index] = [
                            transport.invoke("ids", "next_session_id",
                                             (), {})
                            for _ in range(3)]
                        barrier.wait(timeout=10)
                except Exception as exc:  # pragma: no cover - diagnostic
                    failures.append(exc)

            threads = [threading.Thread(target=worker, args=(i,))
                       for i in range(clients)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=30)
            assert not failures
            assert results == [[1, 2, 3]] * clients

    def test_isolation_off_shares_the_global_namespace(self):
        import itertools
        saved = component._session_ids
        component._session_ids = itertools.count(1)
        try:
            with running(isolate_sessions=False) as (_s, host, port):
                with connected(host, port) as first:
                    assert first.invoke("ids", "next_session_id",
                                        (), {}) == 1
                with connected(host, port) as second:
                    assert second.invoke("ids", "next_session_id",
                                         (), {}) == 2
        finally:
            component._session_ids = saved

    def test_isolation_does_not_leak_into_the_parent(self):
        before = next(component._session_ids)
        with running() as (_server, host, port):
            with connected(host, port) as transport:
                for _ in range(5):
                    transport.invoke("ids", "next_session_id", (), {})
        after = next(component._session_ids)
        assert after == before + 1  # tenant ids never touched ours


class TestStatsAndTelemetry:
    def test_stats_snapshot_shape(self):
        stats = ServerStats()
        snapshot = stats.snapshot()
        assert snapshot["connections_open"] == 0
        assert "auth_failures" in snapshot
        assert "drained" in snapshot
        assert "stats:" in stats.summary_line()

    def test_server_metrics_registered_when_enabled(self):
        TELEMETRY.reset()
        TELEMETRY.enable()
        try:
            with running(name="metrics.test") as (_server, host, port):
                with connected(host, port) as transport:
                    transport.invoke("echo", "ping", (1,), {})
            names = TELEMETRY.metrics.names()
            assert any(n.startswith("server.connections.accepted")
                       for n in names)
            assert any(n.startswith("server.calls") for n in names)
            assert any(n.startswith("server.dispatch.latency")
                       for n in names)
            latency = TELEMETRY.metrics.get(
                "server.dispatch.latency",
                labels={"server": "metrics.test"})
            assert latency is not None and latency.count >= 1
        finally:
            TELEMETRY.disable()
            TELEMETRY.reset()
