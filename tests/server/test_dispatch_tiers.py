"""Dispatch tiers: gate/affinity/process semantics and independence.

Byte-identity of per-tenant reports against fresh-process serial runs
lives in tests/differential/test_server_differential.py; this module
pins the *scheduling* contract -- which tiers exist, how sessions are
routed, and that non-gate tiers never let one tenant's slow dispatch
stall another tenant's replies.
"""

import contextlib
import threading
import time

import pytest

from repro.ip import component
from repro.rmi import JavaCADServer, TcpTransport
from repro.server import DISPATCH_TIERS, AsyncRMIServer
from repro.server.dispatch import ProcessDispatcher

ALL_TIERS = list(DISPATCH_TIERS)
CONCURRENT_TIERS = ["affinity", "process"]


class Echo:
    def ping(self, value):
        return value * 2

    def slow(self, value, seconds=0.2):
        time.sleep(seconds)
        return value


class SessionIds:
    def next_session_id(self):
        return next(component._session_ids)


def tier_session():
    server = JavaCADServer("tiers.session")
    server.bind("echo", Echo(), ["ping", "slow"])
    server.bind("ids", SessionIds(), ["next_session_id"])
    return server


@contextlib.contextmanager
def running(tier, **options):
    server = AsyncRMIServer(session_factory=tier_session,
                            dispatch=tier, **options)
    host, port = server.start()
    try:
        yield server, host, port
    finally:
        server.stop()


class TestTierSelection:
    def test_known_tiers(self):
        assert DISPATCH_TIERS == ("gate", "affinity", "process")

    def test_unknown_tier_is_rejected(self):
        with pytest.raises(ValueError, match="dispatch"):
            AsyncRMIServer(session_factory=tier_session,
                           dispatch="osmosis")

    @pytest.mark.parametrize("tier", ALL_TIERS)
    def test_round_trip_on_every_tier(self, tier):
        with running(tier) as (_server, host, port):
            transport = TcpTransport(host, port)
            try:
                assert transport.invoke("echo", "ping", (21,), {}) == 42
            finally:
                transport.close()

    @pytest.mark.parametrize("tier", ALL_TIERS)
    def test_repr_names_the_tier(self, tier):
        server = AsyncRMIServer(session_factory=tier_session,
                                dispatch=tier)
        assert f"dispatch={tier!r}" in repr(server)


class TestSessionIdIsolation:
    @pytest.mark.parametrize("tier", ALL_TIERS)
    def test_two_tenants_each_see_fresh_process_ids(self, tier):
        with running(tier) as (_server, host, port):
            first = TcpTransport(host, port)
            second = TcpTransport(host, port)
            try:
                a = [first.invoke("ids", "next_session_id", (), {})
                     for _ in range(3)]
                b = [second.invoke("ids", "next_session_id", (), {})
                     for _ in range(3)]
                # Sticky continuity: the same session resumes its
                # namespace, it does not restart it.
                a += [first.invoke("ids", "next_session_id", (), {})
                      for _ in range(2)]
            finally:
                first.close()
                second.close()
        assert a == [1, 2, 3, 4, 5]
        assert b == [1, 2, 3]

    def test_process_tier_routes_sessions_stickily(self):
        dispatcher = ProcessDispatcher(tier_session, workers=3)
        try:
            for session_id in range(1, 10):
                pool = dispatcher.pool_for(session_id)
                assert pool is dispatcher.pool_for(session_id)
                expected = (session_id - 1) % 3
                assert dispatcher._pools.index(pool) == expected
        finally:
            dispatcher.shutdown()

    def test_process_dispatcher_rejects_zero_workers(self):
        with pytest.raises(ValueError, match="workers"):
            ProcessDispatcher(tier_session, workers=0)


class TestCrossTenantIndependence:
    """A slow tenant must not delay a fast tenant's replies.

    The slow call sleeps, so this holds even on a one-core runner:
    what is being pinned is the *scheduling* (no shared gate between
    tenants), not CPU parallelism.  Under the gate tier the same
    sequence serializes -- asserted as the baseline so the test would
    catch the gate accidentally losing its (documented) serialization.
    """

    SLOW_SECONDS = 0.8

    def _overlap(self, tier):
        with running(tier) as (_server, host, port):
            slow = TcpTransport(host, port)
            fast = TcpTransport(host, port)
            try:
                fast.invoke("echo", "ping", (0,), {})  # open session
                slow_done = threading.Event()

                def slow_call():
                    slow.invoke("echo", "slow", (1,),
                                {"seconds": self.SLOW_SECONDS})
                    slow_done.set()

                worker = threading.Thread(target=slow_call)
                worker.start()
                time.sleep(0.15)  # the slow dispatch is now in flight
                begin = time.monotonic()
                replies = [fast.invoke("echo", "ping", (i,), {})
                           for i in range(5)]
                fast_wall = time.monotonic() - begin
                finished_during = slow_done.is_set()
                worker.join()
            finally:
                slow.close()
                fast.close()
        assert replies == [0, 2, 4, 6, 8]
        return fast_wall, finished_during

    @pytest.mark.parametrize("tier", CONCURRENT_TIERS)
    def test_fast_tenant_overlaps_a_slow_tenants_dispatch(self, tier):
        fast_wall, finished_during = self._overlap(tier)
        # All five replies must land while the slow call still holds
        # its executor -- they never queue behind it.
        assert not finished_during
        assert fast_wall < self.SLOW_SECONDS / 2, fast_wall

    def test_gate_tier_still_serializes(self):
        fast_wall, _ = self._overlap("gate")
        # Baseline: behind the global gate the fast tenant waits out
        # the slow dispatch (minus the head start before it queued).
        assert fast_wall > self.SLOW_SECONDS / 2, fast_wall
