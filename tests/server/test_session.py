"""Session isolation: COUNTER_SITES, SessionState, IsolationGate."""

import importlib
import itertools

import pytest

from repro.parallel.scenarios import reset_session_state
from repro.server import COUNTER_SITES, IsolationGate, SessionState


@pytest.fixture
def preserved_counters():
    """Snapshot and restore the process-global counters around a test."""
    saved = {}
    for module_name, attr in COUNTER_SITES:
        module = importlib.import_module(module_name)
        saved[(module_name, attr)] = getattr(module, attr)
    yield saved
    for (module_name, attr), counter in saved.items():
        setattr(importlib.import_module(module_name), attr, counter)


def _site_value(site):
    module_name, attr = site
    return getattr(importlib.import_module(module_name), attr)


class TestCounterSites:
    def test_every_site_exists_and_counts(self):
        for site in COUNTER_SITES:
            counter = _site_value(site)
            assert isinstance(counter, type(itertools.count())), site

    def test_the_five_known_leak_sites_are_covered(self):
        # The exhaustive list the parallel layer has always reset; a
        # new id counter that leaks into frame sizes must be added
        # HERE, not just in reset_session_state.
        assert set(COUNTER_SITES) == {
            ("repro.rmi.protocol", "_call_ids"),
            ("repro.ip.component", "_session_ids"),
            ("repro.ip.negotiation", "_session_counter"),
            ("repro.core.scheduler", "_scheduler_ids"),
            ("repro.core.module", "_module_ids"),
        }

    def test_reset_session_state_rewinds_every_site(
            self, preserved_counters):
        for site in COUNTER_SITES:
            next(_site_value(site))  # advance away from 1
        reset_session_state()
        for site in COUNTER_SITES:
            assert next(_site_value(site)) == 1, site


class TestSessionState:
    def test_fresh_namespaces_start_at_one(self):
        state = SessionState()
        assert set(state.counters) == set(COUNTER_SITES)
        for site in COUNTER_SITES:
            assert next(state.counters[site]) == 1

    def test_states_are_independent(self):
        first, second = SessionState(), SessionState()
        site = COUNTER_SITES[0]
        assert [next(first.counters[site]) for _ in range(3)] == [1, 2, 3]
        assert next(second.counters[site]) == 1


class TestIsolationGate:
    def test_swaps_and_restores_globals(self, preserved_counters):
        gate = IsolationGate()
        state = SessionState()
        site = COUNTER_SITES[0]
        outside_before = _site_value(site)
        with gate.isolated(state):
            assert _site_value(site) is state.counters[site]
            assert next(_site_value(site)) == 1
        assert _site_value(site) is outside_before

    def test_session_sequences_resume_across_entries(
            self, preserved_counters):
        gate = IsolationGate()
        state = SessionState()
        site = COUNTER_SITES[0]
        with gate.isolated(state):
            assert next(_site_value(site)) == 1
        with gate.isolated(state):
            assert next(_site_value(site)) == 2

    def test_two_tenants_each_see_fresh_process_ids(
            self, preserved_counters):
        gate = IsolationGate()
        tenants = [SessionState(), SessionState()]
        site = COUNTER_SITES[0]
        seen = {0: [], 1: []}
        for _ in range(3):
            for tenant, state in enumerate(tenants):
                with gate.isolated(state):
                    seen[tenant].append(next(_site_value(site)))
        assert seen[0] == [1, 2, 3]
        assert seen[1] == [1, 2, 3]

    def test_restores_on_exception(self, preserved_counters):
        gate = IsolationGate()
        state = SessionState()
        site = COUNTER_SITES[0]
        outside_before = _site_value(site)
        with pytest.raises(RuntimeError):
            with gate.isolated(state):
                raise RuntimeError("servant fault")
        assert _site_value(site) is outside_before
