"""Session isolation: COUNTER_SITES, SessionState, the gates."""

import importlib
import itertools
import threading

import pytest

from repro.parallel.scenarios import reset_session_state
from repro.server import (COUNTER_SITES, IsolationGate, SessionGate,
                          SessionState, install_site_proxies,
                          uninstall_site_proxies)


@pytest.fixture
def preserved_counters():
    """Snapshot and restore the process-global counters around a test."""
    saved = {}
    for module_name, attr in COUNTER_SITES:
        module = importlib.import_module(module_name)
        saved[(module_name, attr)] = getattr(module, attr)
    yield saved
    for (module_name, attr), counter in saved.items():
        setattr(importlib.import_module(module_name), attr, counter)


def _site_value(site):
    module_name, attr = site
    return getattr(importlib.import_module(module_name), attr)


class TestCounterSites:
    def test_every_site_exists_and_counts(self):
        for site in COUNTER_SITES:
            counter = _site_value(site)
            assert isinstance(counter, type(itertools.count())), site

    def test_the_known_leak_sites_are_covered(self):
        # The exhaustive list the parallel layer has always reset; a
        # new id counter that leaks into frame sizes must be added
        # HERE, not just in reset_session_state.
        assert set(COUNTER_SITES) == {
            ("repro.rmi.protocol", "_call_ids"),
            ("repro.ip.component", "_session_ids"),
            ("repro.ip.negotiation", "_session_counter"),
            ("repro.core.scheduler", "_scheduler_ids"),
            ("repro.core.module", "_module_ids"),
            ("repro.core.connector", "_connector_ids"),
        }

    def test_reset_session_state_rewinds_every_site(
            self, preserved_counters):
        for site in COUNTER_SITES:
            next(_site_value(site))  # advance away from 1
        reset_session_state()
        for site in COUNTER_SITES:
            assert next(_site_value(site)) == 1, site


class TestSessionState:
    def test_fresh_namespaces_start_at_one(self):
        state = SessionState()
        assert set(state.counters) == set(COUNTER_SITES)
        for site in COUNTER_SITES:
            assert next(state.counters[site]) == 1

    def test_states_are_independent(self):
        first, second = SessionState(), SessionState()
        site = COUNTER_SITES[0]
        assert [next(first.counters[site]) for _ in range(3)] == [1, 2, 3]
        assert next(second.counters[site]) == 1


class TestIsolationGate:
    def test_swaps_and_restores_globals(self, preserved_counters):
        gate = IsolationGate()
        state = SessionState()
        site = COUNTER_SITES[0]
        outside_before = _site_value(site)
        with gate.isolated(state):
            assert _site_value(site) is state.counters[site]
            assert next(_site_value(site)) == 1
        assert _site_value(site) is outside_before

    def test_session_sequences_resume_across_entries(
            self, preserved_counters):
        gate = IsolationGate()
        state = SessionState()
        site = COUNTER_SITES[0]
        with gate.isolated(state):
            assert next(_site_value(site)) == 1
        with gate.isolated(state):
            assert next(_site_value(site)) == 2

    def test_two_tenants_each_see_fresh_process_ids(
            self, preserved_counters):
        gate = IsolationGate()
        tenants = [SessionState(), SessionState()]
        site = COUNTER_SITES[0]
        seen = {0: [], 1: []}
        for _ in range(3):
            for tenant, state in enumerate(tenants):
                with gate.isolated(state):
                    seen[tenant].append(next(_site_value(site)))
        assert seen[0] == [1, 2, 3]
        assert seen[1] == [1, 2, 3]

    def test_restores_on_exception(self, preserved_counters):
        gate = IsolationGate()
        state = SessionState()
        site = COUNTER_SITES[0]
        outside_before = _site_value(site)
        with pytest.raises(RuntimeError):
            with gate.isolated(state):
                raise RuntimeError("servant fault")
        assert _site_value(site) is outside_before

    def test_failed_swap_restores_already_swapped_counters(
            self, preserved_counters, monkeypatch):
        # Regression: the swap loop used to run before the try, so a
        # site that fails to resolve mid-loop leaked every counter
        # already swapped in.  Poison the LAST entry so all real sites
        # are swapped before the failure.
        import repro.server.session as session_module

        poisoned = COUNTER_SITES + (("repro.no_such_module", "_x"),)
        monkeypatch.setattr(session_module, "COUNTER_SITES", poisoned)
        gate = IsolationGate()
        state = SessionState()
        # SessionState() above used the real sites; give the state the
        # poisoned site too so the failure is the import, not the dict.
        state.counters[poisoned[-1]] = itertools.count(1)
        before = {site: _site_value(site) for site in COUNTER_SITES}
        with pytest.raises(ModuleNotFoundError):
            with gate.isolated(state):
                pass  # pragma: no cover - swap fails before the body
        for site in COUNTER_SITES:
            assert _site_value(site) is before[site], site


class TestSiteProxies:
    def test_install_is_refcounted(self, preserved_counters):
        site = COUNTER_SITES[0]
        plain = _site_value(site)
        install_site_proxies()
        install_site_proxies()
        proxy = _site_value(site)
        assert proxy is not plain
        uninstall_site_proxies()
        assert _site_value(site) is proxy  # one ref still held
        uninstall_site_proxies()
        assert _site_value(site) is plain

    def test_unbound_threads_fall_through_to_the_global_counter(
            self, preserved_counters):
        site = COUNTER_SITES[0]
        before = next(_site_value(site))
        install_site_proxies()
        try:
            assert next(_site_value(site)) == before + 1
        finally:
            uninstall_site_proxies()
        assert next(_site_value(site)) == before + 2

    def test_extra_uninstall_is_harmless(self, preserved_counters):
        uninstall_site_proxies()  # no install outstanding
        for site in COUNTER_SITES:
            assert isinstance(_site_value(site),
                              type(itertools.count())), site


class TestSessionGate:
    @pytest.fixture
    def proxied(self, preserved_counters):
        install_site_proxies()
        yield
        uninstall_site_proxies()

    def test_requires_installed_proxies(self, preserved_counters):
        gate = SessionGate(SessionState())
        with pytest.raises(RuntimeError, match="install_site_proxies"):
            with gate.isolated():
                pass  # pragma: no cover - gate refuses entry

    def test_binds_session_counters_to_this_thread(self, proxied):
        gate = SessionGate(SessionState())
        site = COUNTER_SITES[0]
        with gate.isolated():
            assert [next(_site_value(site)) for _ in range(3)] \
                == [1, 2, 3]
        with gate.isolated():
            assert next(_site_value(site)) == 4

    def test_concurrent_sessions_draw_independent_ids(self, proxied):
        site = COUNTER_SITES[0]
        barrier = threading.Barrier(2)
        seen = {}

        def tenant(name):
            gate = SessionGate(SessionState())
            with gate.isolated():
                barrier.wait(timeout=5)  # both inside their gates
                seen[name] = [next(_site_value(site))
                              for _ in range(3)]

        threads = [threading.Thread(target=tenant, args=(n,))
                   for n in ("a", "b")]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert seen == {"a": [1, 2, 3], "b": [1, 2, 3]}

    def test_isolation_gate_respects_live_proxies(self, proxied):
        # A gate-tier server sharing the process with an affinity
        # server must swap the proxy's fallback, not evict the proxy.
        site = COUNTER_SITES[0]
        proxy = _site_value(site)
        gate = IsolationGate()
        state = SessionState()
        with gate.isolated(state):
            assert _site_value(site) is proxy
            assert next(_site_value(site)) == 1
        assert _site_value(site) is proxy
        with gate.isolated(state):
            assert next(_site_value(site)) == 2
