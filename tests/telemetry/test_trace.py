"""Span tracing: nesting, thread isolation, dual timestamps."""

import threading

from repro.net.clock import VirtualClock
from repro.telemetry.trace import Tracer


class TestSpanBasics:
    def test_span_records_wall_interval(self):
        tracer = Tracer()
        with tracer.span("work"):
            pass
        (span,) = tracer.spans
        assert span.name == "work"
        assert span.wall_end >= span.wall_start >= 0.0
        assert span.wall_duration >= 0.0

    def test_nesting_sets_parent_ids(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                assert tracer.current_span() is inner
            assert tracer.current_span() is outer
        assert tracer.current_span() is None
        inner_span, outer_span = tracer.spans
        assert inner_span.name == "inner"
        assert inner_span.parent_id == outer_span.span_id
        assert outer_span.parent_id is None

    def test_exception_is_recorded_and_span_closed(self):
        tracer = Tracer()
        try:
            with tracer.span("faulty"):
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        (span,) = tracer.spans
        assert span.args["error"] == "RuntimeError: boom"
        assert tracer.current_span() is None

    def test_virtual_clock_timestamps(self):
        tracer = Tracer()
        clock = VirtualClock()
        clock.charge_cpu(2.0)
        with tracer.span("sim", clock=clock):
            clock.charge_cpu(3.0)
            clock.wait(1.5)
        (span,) = tracer.spans
        assert span.virtual_start == 2.0
        assert span.virtual_end == 6.5
        assert span.virtual_duration == 4.5

    def test_span_without_clock_has_no_virtual_interval(self):
        tracer = Tracer()
        with tracer.span("plain"):
            pass
        (span,) = tracer.spans
        assert span.virtual_start is None
        assert span.virtual_duration is None

    def test_set_attaches_args(self):
        tracer = Tracer()
        with tracer.span("annotated", args={"a": 1}) as span:
            span.set("b", 2)
        (recorded,) = tracer.spans
        assert recorded.args == {"a": 1, "b": 2}

    def test_reset_drops_spans(self):
        tracer = Tracer()
        with tracer.span("gone"):
            pass
        tracer.reset()
        assert tracer.spans == ()


class TestThreadIsolation:
    def test_two_threads_do_not_interleave_span_parents(self):
        """Two concurrent scheduler threads must keep separate stacks:
        each thread's inner span is parented by *its own* outer span."""
        tracer = Tracer()
        barrier = threading.Barrier(2)
        failures = []

        def run(label):
            try:
                with tracer.span(f"outer-{label}") as outer:
                    barrier.wait(timeout=5)  # both outers open now
                    with tracer.span(f"inner-{label}") as inner:
                        barrier.wait(timeout=5)  # both inners open now
                        if inner.parent_id != outer.span_id:
                            failures.append(
                                f"{label}: inner parented by "
                                f"{inner.parent_id}, expected "
                                f"{outer.span_id}")
            except Exception as exc:  # pragma: no cover - debug aid
                failures.append(f"{label}: {exc!r}")

        threads = [threading.Thread(target=run, args=(name,))
                   for name in ("alpha", "beta")]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not failures
        spans = {span.name: span for span in tracer.spans}
        assert len(spans) == 4
        for label in ("alpha", "beta"):
            assert spans[f"inner-{label}"].parent_id == \
                spans[f"outer-{label}"].span_id
            assert spans[f"outer-{label}"].parent_id is None
            # Both spans of a thread carry that thread's id.
            assert spans[f"inner-{label}"].thread_id == \
                spans[f"outer-{label}"].thread_id
        assert spans["inner-alpha"].thread_id != \
            spans["inner-beta"].thread_id

    def test_span_ids_unique_across_threads(self):
        tracer = Tracer()

        def work():
            for _ in range(100):
                with tracer.span("s"):
                    pass

        threads = [threading.Thread(target=work) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        identifiers = [span.span_id for span in tracer.spans]
        assert len(identifiers) == 400
        assert len(set(identifiers)) == 400
