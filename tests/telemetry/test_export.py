"""Exporters: Chrome trace round-trip and metrics JSON."""

import json

import pytest

from repro.net.clock import VirtualClock
from repro.telemetry.export import (chrome_trace_events,
                                    export_chrome_trace,
                                    export_metrics_json, export_summary,
                                    span_summary)
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.trace import Tracer


def _traced_work(tracer):
    clock = VirtualClock()
    with tracer.span("outer", category="scheduler", clock=clock):
        clock.charge_cpu(1.0)
        with tracer.span("inner", category="rmi", clock=clock,
                         args={"method": "estimate"}):
            clock.charge_cpu(0.5)
    return clock


class TestChromeTrace:
    def test_round_trip_is_valid_json_with_monotonic_ts(self, tmp_path):
        tracer = Tracer()
        for _ in range(5):
            _traced_work(tracer)
        path = tmp_path / "trace.json"
        export_chrome_trace(tracer, str(path))

        loaded = json.loads(path.read_text())
        events = loaded["traceEvents"]
        spans = [e for e in events if e["ph"] == "X"]
        assert len(spans) == 10
        timestamps = [e["ts"] for e in spans]
        assert timestamps == sorted(timestamps)
        assert all(e["ts"] >= 0 for e in spans)
        assert all(e["dur"] >= 0 for e in spans)
        for event in spans:
            assert {"name", "cat", "ph", "ts", "dur", "pid",
                    "tid", "args"} <= set(event)

    def test_events_carry_dual_timestamps(self):
        tracer = Tracer()
        _traced_work(tracer)
        spans = [e for e in chrome_trace_events(tracer)
                 if e["ph"] == "X"]
        inner = next(e for e in spans if e["name"] == "inner")
        assert inner["args"]["virtual_start_s"] == 1.0
        assert inner["args"]["virtual_end_s"] == 1.5
        assert inner["args"]["virtual_duration_s"] == pytest.approx(0.5)
        assert inner["args"]["method"] == "estimate"

    def test_parent_ids_travel_in_args(self):
        tracer = Tracer()
        _traced_work(tracer)
        spans = [e for e in chrome_trace_events(tracer)
                 if e["ph"] == "X"]
        outer = next(e for e in spans if e["name"] == "outer")
        inner = next(e for e in spans if e["name"] == "inner")
        assert inner["args"]["parent_span_id"] == \
            outer["args"]["span_id"]

    def test_thread_name_metadata_events(self):
        tracer = Tracer()
        _traced_work(tracer)
        metadata = [e for e in chrome_trace_events(tracer)
                    if e["ph"] == "M"]
        assert metadata
        assert all(e["name"] == "thread_name" for e in metadata)

    def test_accepts_open_file_destination(self, tmp_path):
        tracer = Tracer()
        _traced_work(tracer)
        path = tmp_path / "trace.json"
        with open(path, "w") as handle:
            export_chrome_trace(tracer, handle)
        assert json.loads(path.read_text())["traceEvents"]


class TestMetricsExport:
    def test_metrics_json_round_trip(self, tmp_path):
        registry = MetricsRegistry()
        registry.counter("calls").inc(3)
        registry.histogram("bytes", buckets=(10.0, 100.0)).observe(42)
        path = tmp_path / "metrics.json"
        export_metrics_json(registry, str(path))
        loaded = json.loads(path.read_text())
        assert loaded["metrics"]["calls"]["value"] == 3
        assert loaded["metrics"]["bytes"]["buckets"]["le=100"] == 1

    def test_summary_combines_metrics_and_spans(self, tmp_path):
        registry = MetricsRegistry()
        registry.counter("calls").inc()
        tracer = Tracer()
        _traced_work(tracer)
        _traced_work(tracer)
        path = tmp_path / "summary.json"
        export_summary(registry, tracer, str(path))
        loaded = json.loads(path.read_text())
        assert loaded["metrics"]["calls"]["value"] == 1
        assert loaded["spans"]["inner"]["count"] == 2
        assert loaded["spans"]["inner"]["virtual_seconds"] == \
            pytest.approx(1.0)

    def test_span_summary_aggregates_by_name(self):
        tracer = Tracer()
        _traced_work(tracer)
        summary = span_summary(tracer)
        assert summary["outer"]["category"] == "scheduler"
        assert summary["outer"]["count"] == 1
        assert summary["outer"]["virtual_seconds"] == pytest.approx(1.5)
