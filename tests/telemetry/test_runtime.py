"""The global telemetry switchboard and the instrumented hot paths."""

import json

import pytest

from repro.bench.scenarios import run_scenario
from repro.cli import main
from repro.net.model import LOCALHOST
from repro.telemetry import TELEMETRY, telemetry_session


@pytest.fixture(autouse=True)
def _clean_telemetry():
    """Keep the process-wide singleton pristine across tests."""
    TELEMETRY.disable()
    TELEMETRY.reset()
    yield
    TELEMETRY.disable()
    TELEMETRY.reset()


class TestSwitchboard:
    def test_disabled_by_default(self):
        assert TELEMETRY.enabled is False

    def test_session_enables_then_restores(self):
        with telemetry_session():
            assert TELEMETRY.enabled
        assert not TELEMETRY.enabled

    def test_session_restores_enabled_state_when_nested(self):
        TELEMETRY.enable()
        with telemetry_session(reset=False):
            pass
        assert TELEMETRY.enabled

    def test_session_exports_on_exit(self, tmp_path):
        trace_path = tmp_path / "trace.json"
        metrics_path = tmp_path / "metrics.json"
        with telemetry_session(trace_out=str(trace_path),
                               metrics_out=str(metrics_path)):
            TELEMETRY.metrics.counter("touched").inc()
            with TELEMETRY.tracer.span("spanned"):
                pass
        assert json.loads(trace_path.read_text())["traceEvents"]
        loaded = json.loads(metrics_path.read_text())
        assert loaded["metrics"]["touched"]["value"] == 1


class TestInstrumentedPaths:
    def test_disabled_run_collects_nothing(self):
        run_scenario("ER", LOCALHOST, width=4, patterns=5, buffer_size=2)
        assert TELEMETRY.tracer.spans == ()
        assert TELEMETRY.metrics.names() == ()

    def test_scenario_produces_all_three_span_categories(self):
        with telemetry_session():
            run_scenario("ER", LOCALHOST, width=4, patterns=5,
                         buffer_size=2)
        categories = {span.category for span in TELEMETRY.tracer.spans}
        assert {"scheduler", "rmi", "estimator"} <= categories

    def test_spans_carry_virtual_timestamps(self):
        with telemetry_session():
            run_scenario("ER", LOCALHOST, width=4, patterns=5,
                         buffer_size=2)
        rmi_spans = TELEMETRY.tracer.spans_by_category("rmi")
        assert rmi_spans
        for span in rmi_spans:
            assert span.virtual_start is not None
            assert span.virtual_end is not None
            assert span.virtual_end >= span.virtual_start

    def test_scheduler_metrics_match_run_stats(self):
        with telemetry_session():
            result = run_scenario("ER", LOCALHOST, width=4, patterns=5,
                                  buffer_size=2)
        delivered = TELEMETRY.metrics.counter("scheduler.delivered")
        assert delivered.value == result.events

    def test_rmi_metrics_match_transport_stats(self):
        with telemetry_session():
            result = run_scenario("ER", LOCALHOST, width=4, patterns=5,
                                  buffer_size=2)
        calls = TELEMETRY.metrics.counter(
            "rmi.calls", labels={"transport": "in-process"})
        assert calls.value == result.remote_calls
        assert TELEMETRY.metrics.counter(
            "rmi.dispatch.calls",
            labels={"server": "provider.host.name"}).value >= calls.value

    def test_estimator_spans_compare_measured_and_declared_cpu(self):
        with telemetry_session():
            run_scenario("ER", LOCALHOST, width=4, patterns=5,
                         buffer_size=2)
        estimator_spans = TELEMETRY.tracer.spans_by_category("estimator")
        assert estimator_spans
        for span in estimator_spans:
            assert "declared_cpu_s" in span.args
            assert "measured_cpu_s" in span.args


class TestCliTelemetry:
    def test_trace_and_metrics_options_write_files(self, tmp_path,
                                                   capsys):
        trace_path = tmp_path / "trace.json"
        metrics_path = tmp_path / "metrics.json"
        code = main(["table2", "--width", "4", "--patterns", "5",
                     "--trace-out", str(trace_path),
                     "--metrics-out", str(metrics_path)])
        assert code == 0
        output = capsys.readouterr().out
        assert "trace written to" in output

        trace = json.loads(trace_path.read_text())
        spans = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        categories = {e["cat"] for e in spans}
        assert {"scheduler", "rmi", "estimator"} <= categories
        timestamps = [e["ts"] for e in spans]
        assert timestamps == sorted(timestamps)
        metrics = json.loads(metrics_path.read_text())["metrics"]
        assert any(key.startswith("scheduler.") for key in metrics)

    def test_cli_without_options_leaves_telemetry_disabled(self, capsys):
        code = main(["figure4"])
        assert code == 0
        capsys.readouterr()
        assert not TELEMETRY.enabled
        assert TELEMETRY.tracer.spans == ()
