"""Metrics instruments: counters, gauges and histogram bucket edges."""

import threading

import pytest

from repro.telemetry.metrics import (Counter, Gauge, Histogram,
                                     MetricsRegistry)


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        counter = Counter("c")
        assert counter.value == 0
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_accepts_float_increments(self):
        counter = Counter("seconds")
        counter.inc(0.25)
        counter.inc(0.5)
        assert counter.value == pytest.approx(0.75)

    def test_rejects_negative_increments(self):
        counter = Counter("c")
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_concurrent_increments_do_not_lose_updates(self):
        counter = Counter("c")

        def work():
            for _ in range(1000):
                counter.inc()

        threads = [threading.Thread(target=work) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert counter.value == 8000


class TestGauge:
    def test_set_inc_dec(self):
        gauge = Gauge("g")
        gauge.set(10)
        gauge.inc(5)
        gauge.dec(3)
        assert gauge.value == 12

    def test_can_go_negative(self):
        gauge = Gauge("g")
        gauge.dec(2)
        assert gauge.value == -2


class TestHistogramBucketEdges:
    def test_value_at_edge_lands_in_that_bucket(self):
        # Edges are upper-inclusive: v <= edge.
        histogram = Histogram("h", buckets=(1.0, 10.0, 100.0))
        histogram.observe(1.0)
        histogram.observe(10.0)
        histogram.observe(100.0)
        counts = histogram.bucket_counts()
        assert counts == {"le=1": 1, "le=10": 1, "le=100": 1,
                          "overflow": 0}

    def test_value_just_above_edge_goes_to_next_bucket(self):
        histogram = Histogram("h", buckets=(1.0, 10.0))
        histogram.observe(1.0000001)
        assert histogram.bucket_counts() == {"le=1": 0, "le=10": 1,
                                             "overflow": 0}

    def test_overflow_bucket(self):
        histogram = Histogram("h", buckets=(1.0,))
        histogram.observe(2.0)
        histogram.observe(1e9)
        assert histogram.bucket_counts()["overflow"] == 2

    def test_below_first_edge_goes_to_first_bucket(self):
        histogram = Histogram("h", buckets=(1.0, 10.0))
        histogram.observe(-5.0)
        histogram.observe(0.0)
        assert histogram.bucket_counts()["le=1"] == 2

    def test_count_sum_min_max_mean(self):
        histogram = Histogram("h", buckets=(10.0,))
        for value in (1.0, 2.0, 3.0):
            histogram.observe(value)
        assert histogram.count == 3
        assert histogram.sum == pytest.approx(6.0)
        assert histogram.mean == pytest.approx(2.0)
        snapshot = histogram.snapshot()
        assert snapshot["min"] == 1.0
        assert snapshot["max"] == 3.0

    def test_rejects_unsorted_or_duplicate_edges(self):
        with pytest.raises(ValueError):
            Histogram("h", buckets=(10.0, 1.0))
        with pytest.raises(ValueError):
            Histogram("h", buckets=(1.0, 1.0))
        with pytest.raises(ValueError):
            Histogram("h", buckets=())


class TestMetricsRegistry:
    def test_get_or_create_returns_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.gauge("b") is registry.gauge("b")
        assert registry.histogram("c") is registry.histogram("c")

    def test_labels_distinguish_instruments(self):
        registry = MetricsRegistry()
        first = registry.counter("calls", labels={"transport": "tcp"})
        second = registry.counter("calls",
                                  labels={"transport": "in-process"})
        assert first is not second
        first.inc()
        assert second.value == 0
        assert "calls{transport=tcp}" in registry.names()

    def test_label_order_does_not_matter(self):
        registry = MetricsRegistry()
        assert registry.counter("x", labels={"a": 1, "b": 2}) is \
            registry.counter("x", labels={"b": 2, "a": 1})

    def test_kind_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("name")
        with pytest.raises(TypeError):
            registry.gauge("name")

    def test_histogram_buckets_fixed_at_first_creation(self):
        registry = MetricsRegistry()
        first = registry.histogram("h", buckets=(1.0, 2.0))
        again = registry.histogram("h", buckets=(5.0,))
        assert again is first
        assert again.edges == (1.0, 2.0)

    def test_snapshot_and_reset(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(3)
        registry.gauge("g").set(7)
        registry.histogram("h", buckets=(1.0,)).observe(0.5)
        snapshot = registry.snapshot()
        assert snapshot["c"] == {"type": "counter", "value": 3}
        assert snapshot["g"]["value"] == 7
        assert snapshot["h"]["count"] == 1
        registry.reset()
        assert registry.names() == ()

    def test_concurrent_get_or_create_is_safe(self):
        registry = MetricsRegistry()
        seen = []

        def work():
            for index in range(200):
                counter = registry.counter(f"metric{index % 10}")
                counter.inc()
                seen.append(counter)

        threads = [threading.Thread(target=work) for _ in range(6)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        # 10 distinct instruments, each incremented 120 times in total.
        assert len(registry.names()) == 10
        total = sum(registry.counter(f"metric{i}").value
                    for i in range(10))
        assert total == 1200
