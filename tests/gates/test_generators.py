"""Structural generators: arithmetic correctness and structure."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import DesignError
from repro.core.signal import Logic, int_from_bits
from repro.gates import (NetlistSimulator, array_multiplier,
                         equality_comparator, ip1_block, parity_tree,
                         random_netlist, ripple_carry_adder)


def drive(simulator, assignments):
    inputs = {}
    for prefix, (value, width) in assignments.items():
        for bit in range(width):
            inputs[f"{prefix}{bit}"] = Logic((value >> bit) & 1)
    return simulator.outputs(inputs)


class TestAdder:
    def test_exhaustive_3bit(self):
        simulator = NetlistSimulator(ripple_carry_adder(3))
        for a in range(8):
            for b in range(8):
                out = drive(simulator, {"a": (a, 3), "b": (b, 3)})
                assert int_from_bits(out) == a + b

    @given(st.integers(0, 2**12 - 1), st.integers(0, 2**12 - 1))
    @settings(max_examples=60, deadline=None)
    def test_random_12bit(self, a, b):
        simulator = NetlistSimulator(ripple_carry_adder(12))
        out = drive(simulator, {"a": (a, 12), "b": (b, 12)})
        assert int_from_bits(out) == a + b

    def test_width_validation(self):
        with pytest.raises(DesignError):
            ripple_carry_adder(0)


class TestMultiplier:
    def test_exhaustive_3bit(self):
        simulator = NetlistSimulator(array_multiplier(3))
        for a in range(8):
            for b in range(8):
                out = drive(simulator, {"a": (a, 3), "b": (b, 3)})
                assert int_from_bits(out) == a * b

    def test_asymmetric_widths(self):
        simulator = NetlistSimulator(array_multiplier(2, 5))
        for a in range(4):
            for b in range(32):
                out = drive(simulator, {"a": (a, 2), "b": (b, 5)})
                assert int_from_bits(out) == a * b

    @given(st.integers(0, 2**10 - 1), st.integers(0, 2**10 - 1))
    @settings(max_examples=40, deadline=None)
    def test_random_10bit(self, a, b):
        simulator = NetlistSimulator(array_multiplier(10))
        out = drive(simulator, {"a": (a, 10), "b": (b, 10)})
        assert int_from_bits(out) == a * b

    def test_width_one_multiplier_is_an_and(self):
        simulator = NetlistSimulator(array_multiplier(1, 2))
        for a in range(2):
            for b in range(4):
                out = drive(simulator, {"a": (a, 1), "b": (b, 2)})
                assert int_from_bits(out) == a * b

    def test_gate_count_scales_quadratically(self):
        small = array_multiplier(4).gate_count()
        large = array_multiplier(8).gate_count()
        assert 2.5 < large / small < 5.5

    def test_validation(self):
        with pytest.raises(DesignError):
            array_multiplier(0)


class TestParityAndComparator:
    @pytest.mark.parametrize("width", [2, 3, 5, 8])
    def test_parity(self, width):
        simulator = NetlistSimulator(parity_tree(width))
        for word in range(2 ** width):
            inputs = {f"i{i}": Logic((word >> i) & 1)
                      for i in range(width)}
            expected = Logic(bin(word).count("1") % 2)
            assert simulator.outputs(inputs) == (expected,)

    def test_parity_validation(self):
        with pytest.raises(DesignError):
            parity_tree(1)

    @pytest.mark.parametrize("width", [1, 3, 4])
    def test_comparator(self, width):
        simulator = NetlistSimulator(equality_comparator(width))
        for a in range(2 ** width):
            for b in range(2 ** width):
                out = drive(simulator, {"a": (a, width), "b": (b, width)})
                assert out == (Logic.from_bool(a == b),)


class TestIP1Block:
    def test_half_adder_function(self):
        simulator = NetlistSimulator(ip1_block())
        for a in range(2):
            for b in range(2):
                out = simulator.outputs(
                    {"IIP1": Logic(a), "IIP2": Logic(b)})
                assert out == (Logic(a ^ b), Logic(a & b))

    def test_paper_net_names(self):
        netlist = ip1_block()
        assert set(netlist.internal_nets()) == \
            {"I1", "I2", "I3", "I4", "I5", "I6"}
        assert netlist.outputs == ("OIP1", "OIP2")


class TestRandomNetlist:
    @given(seed=st.integers(0, 1000))
    @settings(max_examples=25, deadline=None)
    def test_always_valid_and_acyclic(self, seed):
        netlist = random_netlist(5, 30, 4, seed=seed)
        netlist.validate()  # would raise on loops / undriven nets
        assert len(netlist.outputs) == 4

    def test_deterministic(self):
        a = random_netlist(4, 10, 2, seed=9)
        b = random_netlist(4, 10, 2, seed=9)
        assert [g.cell.name for g in a.gates] == \
            [g.cell.name for g in b.gates]

    def test_validation(self):
        with pytest.raises(DesignError):
            random_netlist(0, 5, 1)
