"""SCOAP controllability/observability analysis."""

import pytest

from repro.core.errors import DesignError
from repro.gates import (INFINITY, Netlist, ScoapAnalysis, c17,
                         parity_tree, ripple_carry_adder)


def single_gate(cell):
    netlist = Netlist(f"one-{cell}")
    netlist.add_input("a")
    netlist.add_input("b")
    netlist.add_output("o")
    netlist.add_gate(cell, ["a", "b"], "o")
    netlist.validate()
    return netlist


class TestControllability:
    def test_primary_inputs_cost_one(self):
        analysis = ScoapAnalysis(single_gate("AND"))
        numbers = analysis.numbers("a")
        assert numbers.cc0 == 1 and numbers.cc1 == 1

    def test_and_gate(self):
        analysis = ScoapAnalysis(single_gate("AND"))
        out = analysis.numbers("o")
        assert out.cc0 == 2      # one controlling 0 + 1
        assert out.cc1 == 3      # both inputs at 1 + 1

    def test_or_gate(self):
        analysis = ScoapAnalysis(single_gate("OR"))
        out = analysis.numbers("o")
        assert out.cc1 == 2 and out.cc0 == 3

    def test_nand_swaps_polarities(self):
        and_out = ScoapAnalysis(single_gate("AND")).numbers("o")
        nand_out = ScoapAnalysis(single_gate("NAND")).numbers("o")
        assert nand_out.cc0 == and_out.cc1
        assert nand_out.cc1 == and_out.cc0

    def test_xor_parity_dp(self):
        analysis = ScoapAnalysis(single_gate("XOR"))
        out = analysis.numbers("o")
        # 0: both equal (1+1)+1; 1: one high one low (1+1)+1.
        assert out.cc0 == 3 and out.cc1 == 3

    def test_inverter_chain_costs_accumulate(self):
        netlist = Netlist("chain")
        netlist.add_input("a")
        netlist.add_gate("NOT", ["a"], "n1")
        netlist.add_output("o")
        netlist.add_gate("NOT", ["n1"], "o")
        netlist.validate()
        analysis = ScoapAnalysis(netlist)
        assert analysis.numbers("o").cc0 == 3  # through two inverters

    def test_wider_parity_is_harder_to_control(self):
        # Every input of a parity tree participates in the output value,
        # so controllability grows with width (unlike an adder's carry,
        # where SCOAP's min-path rule finds a depth-independent set).
        narrow = ScoapAnalysis(parity_tree(2))
        wide = ScoapAnalysis(parity_tree(8))
        assert wide.numbers("par").cc1 > narrow.numbers("par").cc1
        assert wide.numbers("par").cc0 > narrow.numbers("par").cc0


class TestObservability:
    def test_primary_outputs_cost_zero(self):
        analysis = ScoapAnalysis(single_gate("AND"))
        assert analysis.numbers("o").co == 0

    def test_and_input_observability(self):
        analysis = ScoapAnalysis(single_gate("AND"))
        # Observe a through the AND: set b=1 (cc1=1) + 1.
        assert analysis.numbers("a").co == 2

    def test_unobservable_net_is_infinite(self):
        netlist = Netlist("dangling")
        netlist.add_input("a")
        netlist.add_output("o")
        netlist.add_gate("BUF", ["a"], "o")
        netlist.add_gate("NOT", ["a"], "dead")  # drives nothing
        netlist.validate()
        analysis = ScoapAnalysis(netlist)
        assert analysis.numbers("dead").co == INFINITY

    def test_fanout_takes_cheapest_path(self):
        netlist = Netlist("fan")
        netlist.add_input("a")
        netlist.add_input("g")
        netlist.add_output("o1")
        netlist.add_gate("BUF", ["a"], "o1")          # cheap path
        netlist.add_output("o2")
        netlist.add_gate("AND", ["a", "g"], "o2")     # costlier path
        netlist.validate()
        analysis = ScoapAnalysis(netlist)
        assert analysis.numbers("a").co == 1  # through the buffer


class TestSummaries:
    def test_testability_combines_cc_and_co(self):
        analysis = ScoapAnalysis(single_gate("AND"))
        a = analysis.numbers("a")
        assert a.testability_0 == a.cc0 + a.co
        assert a.testability_1 == a.cc1 + a.co

    def test_hardest_fault_on_c17(self):
        analysis = ScoapAnalysis(c17())
        net, effort = analysis.hardest_fault()
        assert net in c17().nets()
        assert 0 < effort < INFINITY

    def test_boundary_summary_is_publishable(self):
        """Port-level SCOAP numbers marshal over RMI (plain dicts)."""
        from repro.rmi import marshal, unmarshal
        analysis = ScoapAnalysis(parity_tree(4))
        summary = analysis.boundary_summary()
        assert set(summary) == set(parity_tree(4).inputs) | \
            set(parity_tree(4).outputs)
        assert unmarshal(marshal(summary)) == summary

    def test_unknown_net_rejected(self):
        with pytest.raises(DesignError):
            ScoapAnalysis(c17()).numbers("ghost")

    def test_scoap_correlates_with_random_pattern_difficulty(self):
        """Sanity: the hardest SCOAP fault on the adder is also among
        the last detected by random patterns (weak but meaningful)."""
        import random
        from repro.core.signal import Logic
        from repro.faults import SerialFaultSimulator, build_fault_list

        netlist = ripple_carry_adder(4)
        analysis = ScoapAnalysis(netlist)
        efforts = {net: max(analysis.numbers(net).testability_0,
                            analysis.numbers(net).testability_1)
                   for net in netlist.nets()}
        hard_nets = sorted(efforts, key=efforts.get)[-5:]

        rng = random.Random(2)
        patterns = [{net: Logic(rng.getrandbits(1))
                     for net in netlist.inputs} for _ in range(40)]
        report = SerialFaultSimulator(
            netlist, build_fault_list(netlist, "none")).run(patterns)
        late = {name for name, index in report.detected.items()
                if index >= 3}
        assert any(any(name.startswith(net) for name in late)
                   for net in hard_nets)
