"""The builtin benchmark corpus: registry, generators, bench loading."""

import random

import pytest

from repro.core import DesignError, Logic
from repro.faults import build_fault_list
from repro.gates import (NetlistSimulator, SequentialBench, alu,
                         corpus_entries, corpus_entry, corpus_names,
                         load_bench, secded, sequential_wrap)
from repro.gates.generators import parity_tree
from repro.lint import lint_netlist

# The ISCAS size class each corpus entry is calibrated against: a
# floor on gate count keeps the generators honest about their scale.
GATE_FLOORS = {
    "alu8": 90, "ecc32": 300, "alu32": 350, "mult8": 300,
    "mult16": 1000, "salu8": 100, "secc32": 400,
}


class TestRegistry:
    def test_new_combinational_names_registered(self):
        names = corpus_names(kind="combinational")
        for name in ("alu8", "ecc32", "alu32", "mult8", "mult16"):
            assert name in names

    def test_sequential_names_registered(self):
        names = corpus_names(kind="sequential")
        for name in ("s27", "salu8", "secc32"):
            assert name in names

    def test_legacy_names_still_present(self):
        names = corpus_names()
        for name in ("c17", "figure4", "chatty"):
            assert name in names

    def test_unknown_name_lists_the_corpus(self):
        with pytest.raises(DesignError, match="alu8.*s27"):
            corpus_entry("c9999")

    def test_entry_kinds_match_built_type(self):
        for entry in corpus_entries():
            bench = entry.build()
            assert isinstance(bench, SequentialBench) == entry.sequential

    def test_gate_count_floors(self):
        for name, floor in GATE_FLOORS.items():
            bench = corpus_entry(name).build()
            core = bench.core if isinstance(bench, SequentialBench) \
                else bench
            assert core.gate_count() >= floor, name

    def test_sequential_entries_have_flip_flops(self):
        for entry in corpus_entries():
            if entry.sequential:
                assert entry.build().ff_count() > 0, entry.name

    def test_corpus_is_lint_clean(self):
        for entry in corpus_entries():
            bench = entry.build()
            core = bench.core if isinstance(bench, SequentialBench) \
                else bench
            assert lint_netlist(core) == [], entry.name


class TestAluGenerator:
    OPS = {0: lambda a, b: a & b, 1: lambda a, b: a | b,
           2: lambda a, b: a ^ b}

    @pytest.mark.parametrize("width", [4, 8])
    def test_matches_reference_semantics(self, width):
        netlist = alu(width)
        simulator = NetlistSimulator(netlist)
        rng = random.Random(7)
        mask = (1 << width) - 1
        for _ in range(20):
            a, b = rng.getrandbits(width), rng.getrandbits(width)
            op = rng.randrange(4)
            inputs = {f"a{i}": Logic((a >> i) & 1) for i in range(width)}
            inputs.update({f"b{i}": Logic((b >> i) & 1)
                           for i in range(width)})
            inputs.update({"op0": Logic(op & 1), "op1": Logic(op >> 1),
                           "op2": Logic.ZERO})
            values = dict(zip(netlist.outputs,
                              simulator.outputs(inputs)))
            if op < 3:
                expected = self.OPS[op](a, b)
            else:
                expected = (a + b) & mask
                assert values["cout"] == Logic((a + b) >> width)
            result = sum(int(values[f"r{i}"]) << i
                         for i in range(width))
            assert result == expected, (a, b, op)
            assert values["zero"] == Logic(int(expected == 0))


class TestSecdedGenerator:
    def _run(self, width, data, errors=()):
        netlist = secded(width)
        simulator = NetlistSimulator(netlist)
        inputs = {f"d{i}": Logic((data >> i) & 1) for i in range(width)}
        for net in netlist.inputs:
            if net.startswith("e"):
                inputs[net] = Logic.ZERO
        for net in errors:
            inputs[net] = Logic.ONE
        return dict(zip(netlist.outputs, simulator.outputs(inputs)))

    def test_clean_channel_passes_data_through(self):
        data = 0xDEADBEEF
        values = self._run(32, data)
        decoded = sum(int(values[f"q{i}"]) << i for i in range(32))
        assert decoded == data
        assert values["derr"] == Logic.ZERO

    def test_single_data_error_corrected(self):
        data = 0x12345678
        values = self._run(32, data, errors=("e3",))
        decoded = sum(int(values[f"q{i}"]) << i for i in range(32))
        assert decoded == data
        assert values["derr"] == Logic.ZERO

    def test_double_error_flagged_uncorrectable(self):
        values = self._run(32, 0x0F0F0F0F, errors=("e1", "e5"))
        assert values["derr"] == Logic.ONE


class TestSequentialWrap:
    def test_wrap_registers_every_core_output(self):
        core = parity_tree(3)
        bench = sequential_wrap(core, name="sp")
        assert bench.ff_count() == len(core.outputs)
        assert bench.gate_count() > core.gate_count()

    def test_wrap_validates(self):
        bench = sequential_wrap(alu(4), name="sa")
        bench.core.validate()
        assert set(bench.registers) == \
            set(bench.core.inputs) - set(bench.primary_inputs)


class TestLoadBench:
    def test_builtin_combinational(self):
        netlist = load_bench("alu8")
        assert netlist.gate_count() >= 90

    def test_builtin_sequential(self):
        bench = load_bench("s27")
        assert isinstance(bench, SequentialBench)
        assert bench.ff_count() == 3

    def test_file_combinational(self, tmp_path):
        from repro.gates.io import C17_BENCH
        path = tmp_path / "c17.bench"
        path.write_text(C17_BENCH)
        netlist = load_bench(str(path))
        assert netlist.gate_count() == 6

    def test_file_sniffed_as_sequential(self, tmp_path):
        from repro.gates.io import S27_BENCH
        path = tmp_path / "s27.bench"
        path.write_text(S27_BENCH)
        bench = load_bench(str(path))
        assert isinstance(bench, SequentialBench)
        assert bench.ff_count() == 3

    def test_unknown_spec_raises(self):
        with pytest.raises(DesignError, match="neither a file"):
            load_bench("not-a-bench")


class TestFaultUniverse:
    """Fault-site counts anchor the docs/corpus.md table."""

    def test_mult16_reaches_four_digit_faults(self):
        assert len(build_fault_list(load_bench("mult16"))) >= 1000

    def test_sequential_cores_have_fault_sites(self):
        for name in corpus_names(kind="sequential"):
            bench = load_bench(name)
            assert len(build_fault_list(bench.core)) > 0, name
