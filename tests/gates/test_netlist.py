"""Netlist container: structure, validation, levelization, summary."""

import pytest

from repro.core.errors import DesignError
from repro.gates import Netlist, ripple_carry_adder


def tiny():
    netlist = Netlist("tiny")
    netlist.add_input("a")
    netlist.add_input("b")
    netlist.add_gate("AND", ["a", "b"], "n1", name="g1")
    netlist.add_output("o")
    netlist.add_gate("NOT", ["n1"], "o", name="g2")
    netlist.validate()
    return netlist


class TestConstruction:
    def test_duplicate_input(self):
        netlist = Netlist("n")
        netlist.add_input("a")
        with pytest.raises(DesignError):
            netlist.add_input("a")

    def test_duplicate_output(self):
        netlist = Netlist("n")
        netlist.add_output("o")
        with pytest.raises(DesignError):
            netlist.add_output("o")

    def test_two_drivers_rejected(self):
        netlist = Netlist("n")
        netlist.add_input("a")
        netlist.add_gate("BUF", ["a"], "n1")
        with pytest.raises(DesignError, match="two drivers"):
            netlist.add_gate("BUF", ["a"], "n1")

    def test_driving_primary_input_rejected(self):
        netlist = Netlist("n")
        netlist.add_input("a")
        netlist.add_input("b")
        with pytest.raises(DesignError):
            netlist.add_gate("BUF", ["b"], "a")

    def test_arity_checked_at_gate_creation(self):
        netlist = Netlist("n")
        netlist.add_input("a")
        with pytest.raises(DesignError):
            netlist.add_gate("NOT", ["a", "a"], "n1")
        with pytest.raises(DesignError):
            netlist.add_gate("AND", ["a"], "n2")


class TestValidation:
    def test_undriven_gate_input(self):
        netlist = Netlist("n")
        netlist.add_input("a")
        netlist.add_gate("AND", ["a", "ghost"], "n1")
        with pytest.raises(DesignError, match="undriven"):
            netlist.validate()

    def test_undriven_output(self):
        netlist = Netlist("n")
        netlist.add_input("a")
        netlist.add_output("o")
        with pytest.raises(DesignError, match="undriven"):
            netlist.validate()

    def test_combinational_loop_detected(self):
        netlist = Netlist("n")
        netlist.add_input("a")
        netlist.add_gate("AND", ["a", "n2"], "n1")
        netlist.add_gate("BUF", ["n1"], "n2")
        with pytest.raises(DesignError, match="loop"):
            netlist.validate()


class TestTopology:
    def test_levelize_is_topological(self):
        netlist = ripple_carry_adder(4)
        position = {gate.name: index
                    for index, gate in enumerate(netlist.levelize())}
        inputs = set(netlist.inputs)
        for gate in netlist.gates:
            for source in gate.inputs:
                if source not in inputs:
                    driver = netlist.driver_of(source)
                    assert position[driver.name] < position[gate.name]

    def test_levelize_result_is_cached(self):
        netlist = ripple_carry_adder(4)
        first = netlist.levelize()
        assert netlist.levelize() is first

    def test_add_gate_invalidates_levelize_cache(self):
        netlist = ripple_carry_adder(2)
        first = netlist.levelize()
        netlist.add_gate("NOT", [netlist.inputs[0]], "extra")
        second = netlist.levelize()
        assert second is not first
        assert len(second) == len(first) + 1

    def test_driver_of(self):
        netlist = tiny()
        assert netlist.driver_of("n1").name == "g1"
        assert netlist.driver_of("a") is None

    def test_fanout_of(self):
        netlist = Netlist("n")
        netlist.add_input("a")
        netlist.add_gate("NOT", ["a"], "n1", name="g1")
        netlist.add_gate("AND", ["a", "n1"], "n2", name="g2")
        readers = netlist.fanout_of("a")
        assert {(gate.name, pin) for gate, pin in readers} == \
            {("g1", 0), ("g2", 0)}

    def test_nets_and_internal_nets(self):
        netlist = tiny()
        assert set(netlist.nets()) == {"a", "b", "n1", "o"}
        assert netlist.internal_nets() == ("n1",)


class TestSummary:
    def test_counts(self):
        netlist = tiny()
        assert netlist.gate_count() == 2
        assert netlist.area == netlist.area  # stable
        assert netlist.area() > 0

    def test_depth(self):
        assert tiny().depth() == 2
        adder = ripple_carry_adder(4)
        assert adder.depth() > 4  # carries ripple

    def test_critical_path_delay_grows_with_width(self):
        assert ripple_carry_adder(8).critical_path_delay() > \
            ripple_carry_adder(2).critical_path_delay()
