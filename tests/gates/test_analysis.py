"""Netlist analysis: cones, arrival times, critical path, stats."""

import pytest

from repro.core.errors import DesignError
from repro.gates import (Netlist, arrival_times, c17, critical_path,
                         fanin_cone, fanout_cone, netlist_stats,
                         ripple_carry_adder, support)


@pytest.fixture(scope="module")
def netlist():
    return c17()


class TestCones:
    def test_fanin_cone_of_output(self, netlist):
        cone = fanin_cone(netlist, "22")
        assert cone == {"22", "10", "16", "11", "1", "2", "3", "6"}
        assert "7" not in cone  # 7 only feeds 19/23

    def test_fanout_cone_of_input(self, netlist):
        cone = fanout_cone(netlist, "7")
        assert cone == {"7", "19", "23"}

    def test_cones_are_reflexive(self, netlist):
        assert "11" in fanin_cone(netlist, "11")
        assert "11" in fanout_cone(netlist, "11")

    def test_unknown_net_rejected(self, netlist):
        with pytest.raises(DesignError):
            fanin_cone(netlist, "ghost")
        with pytest.raises(DesignError):
            fanout_cone(netlist, "ghost")

    def test_support(self, netlist):
        assert support(netlist, "22") == ("1", "2", "3", "6")
        assert support(netlist, "1") == ("1",)

    def test_cone_duality(self, netlist):
        """b in fanout(a)  <=>  a in fanin(b)."""
        nets = netlist.nets()
        for a in nets:
            for b in fanout_cone(netlist, a):
                assert a in fanin_cone(netlist, b)


class TestTiming:
    def test_arrival_times_monotone_along_paths(self, netlist):
        arrivals = arrival_times(netlist)
        for gate in netlist.gates:
            for source in gate.inputs:
                assert arrivals[gate.output] > arrivals[source]

    def test_inputs_arrive_at_zero(self, netlist):
        arrivals = arrival_times(netlist)
        assert all(arrivals[net] == 0.0 for net in netlist.inputs)

    def test_critical_path_ends_at_worst_output(self, netlist):
        path = critical_path(netlist)
        arrivals = arrival_times(netlist)
        assert path[0] in netlist.inputs
        assert path[-1] in netlist.outputs
        assert arrivals[path[-1]] == pytest.approx(
            netlist.critical_path_delay())

    def test_critical_path_is_connected(self, netlist):
        path = critical_path(netlist)
        for upstream, downstream in zip(path, path[1:]):
            driver = netlist.driver_of(downstream)
            assert driver is not None and upstream in driver.inputs

    def test_path_length_tracks_depth(self):
        path = critical_path(ripple_carry_adder(6))
        assert len(path) >= ripple_carry_adder(6).depth()


class TestStats:
    def test_c17_summary(self, netlist):
        stats = netlist_stats(netlist)
        assert stats.gates == 6
        assert stats.inputs == 5 and stats.outputs == 2
        assert stats.cell_histogram == (("NAND", 6),)
        assert stats.depth == 3
        assert stats.max_fanout >= 2
        assert "NANDx6" in str(stats)

    def test_adder_histogram(self):
        stats = netlist_stats(ripple_carry_adder(4))
        cells = dict(stats.cell_histogram)
        assert cells["XOR"] > 0 and cells["AND"] > 0
        assert stats.area == pytest.approx(
            ripple_carry_adder(4).area())
