"""ISCAS .bench reader/writer."""

import pytest

from repro.core import DesignError, Logic
from repro.gates import (NetlistSimulator, c17, read_bench,
                         ripple_carry_adder, write_bench)


class TestC17:
    def test_parses(self):
        netlist = c17()
        assert netlist.gate_count() == 6
        assert netlist.inputs == ("1", "2", "3", "6", "7")
        assert netlist.outputs == ("22", "23")

    def test_known_response(self):
        # c17 truth: 22 = NAND(NAND(1,3), NAND(2, NAND(3,6)))
        simulator = NetlistSimulator(c17())
        values = simulator.evaluate({
            "1": Logic.ONE, "2": Logic.ONE, "3": Logic.ZERO,
            "6": Logic.ONE, "7": Logic.ZERO})
        # 10=NAND(1,0)=1; 11=NAND(0,1)=1; 16=NAND(1,1)=0;
        # 19=NAND(1,0)=1; 22=NAND(1,0)=1; 23=NAND(0,1)=1
        assert values["22"] is Logic.ONE
        assert values["23"] is Logic.ONE

    def test_exhaustive_consistency(self):
        """All 32 input combinations evaluate to known values."""
        simulator = NetlistSimulator(c17())
        for word in range(32):
            outputs = simulator.evaluate_int(word)
            assert outputs["22"].is_known and outputs["23"].is_known


class TestRoundtrip:
    def test_write_then_read_preserves_function(self):
        original = ripple_carry_adder(3)
        text = write_bench(original)
        restored = read_bench(text, name="restored")
        sim_a = NetlistSimulator(original)
        sim_b = NetlistSimulator(restored)
        for word in range(64):
            values_a = sim_a.evaluate_int(word)
            values_b = sim_b.evaluate_int(word)
            for net in original.outputs:
                assert values_a[net] == values_b[net]

    def test_buf_alias(self):
        netlist = read_bench("INPUT(a)\nOUTPUT(o)\no = BUFF(a)\n")
        assert netlist.gates[0].cell.name == "BUF"

    def test_inv_alias(self):
        netlist = read_bench("INPUT(a)\nOUTPUT(o)\no = INV(a)\n")
        assert netlist.gates[0].cell.name == "NOT"


class TestParsing:
    def test_comments_and_blank_lines(self):
        text = """
        # a comment
        INPUT(a)

        OUTPUT(o)   # trailing comment
        o = NOT(a)
        """
        netlist = read_bench(text)
        assert netlist.gate_count() == 1

    def test_output_on_input_gets_buffered(self):
        netlist = read_bench("INPUT(a)\nOUTPUT(a)\n")
        assert netlist.outputs == ("a_po",)
        simulator = NetlistSimulator(netlist)
        assert simulator.outputs({"a": Logic.ONE}) == (Logic.ONE,)

    def test_dff_rejected(self):
        with pytest.raises(DesignError, match="DFF"):
            read_bench("INPUT(a)\nOUTPUT(q)\nq = DFF(a)\n")

    def test_dff_rejection_names_engines_and_escape_hatch(self):
        # The message must state that the limitation is engine-wide
        # (both --engine choices are combinational) and point at the
        # sequential campaign path.
        with pytest.raises(DesignError) as excinfo:
            read_bench("INPUT(a)\nOUTPUT(q)\nq = DFF(a)\n")
        message = str(excinfo.value)
        assert "--engine" in message
        assert "event and compiled" in message
        assert "repro.faults.sequential" in message

    def test_unknown_cell_rejected(self):
        with pytest.raises(DesignError, match="unknown cell"):
            read_bench("INPUT(a)\nOUTPUT(o)\no = MAJ(a, a, a)\n")

    def test_garbage_line_rejected(self):
        with pytest.raises(DesignError, match="cannot parse"):
            read_bench("INPUT(a)\nthis is not bench\n")

    def test_case_insensitive_io(self):
        netlist = read_bench("input(a)\noutput(o)\no = NOT(a)\n")
        assert netlist.inputs == ("a",)
