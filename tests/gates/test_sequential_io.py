"""Sequential ``.bench`` parsing, writing and the round-trip property."""

import pytest

from repro.core import DesignError
from repro.faults import build_fault_list
from repro.gates import (S27_BENCH, SequentialBench, corpus_names,
                         load_bench, read_sequential_bench, s27,
                         write_sequential_bench)


class TestReadSequentialBench:
    def test_s27_shape(self):
        bench = s27()
        assert isinstance(bench, SequentialBench)
        assert bench.primary_inputs == ("G0", "G1", "G2", "G3")
        assert bench.primary_outputs == ("G17",)
        assert bench.ff_count() == 3
        assert bench.gate_count() == 10
        # Full-scan view: every flip-flop output is a core input and
        # every flip-flop input is observable at the core boundary.
        for q in bench.registers:
            assert q in bench.core.inputs
        for d in bench.registers.values():
            assert d in bench.core.outputs

    def test_core_validates(self):
        s27().core.validate()

    def test_dff_arity_checked(self):
        with pytest.raises(DesignError, match="DFF"):
            read_sequential_bench(
                "INPUT(a)\nOUTPUT(q)\nq = DFF(a, a)\n")

    def test_duplicate_flip_flop_rejected(self):
        with pytest.raises(DesignError, match="flip-flop"):
            read_sequential_bench(
                "INPUT(a)\nOUTPUT(q)\nq = DFF(a)\nq = DFF(a)\n")

    def test_flip_flop_clashing_with_input_rejected(self):
        with pytest.raises(DesignError, match="flip-flop"):
            read_sequential_bench(
                "INPUT(a)\nOUTPUT(a)\na = DFF(a)\n")

    def test_net_driven_by_gate_and_flip_flop_rejected(self):
        with pytest.raises(DesignError, match="driven"):
            read_sequential_bench(
                "INPUT(a)\nINPUT(b)\nOUTPUT(q)\n"
                "q = DFF(a)\nq = AND(a, b)\n")


class TestRoundTrip:
    """write -> read preserves the design's structural invariants."""

    @pytest.mark.parametrize("name", corpus_names(kind="sequential"))
    def test_counts_preserved(self, name):
        original = load_bench(name)
        rebuilt = read_sequential_bench(
            write_sequential_bench(original), name=name)
        assert rebuilt.gate_count() == original.gate_count()
        assert rebuilt.ff_count() == original.ff_count()
        assert rebuilt.primary_inputs == original.primary_inputs
        assert set(rebuilt.primary_outputs) == \
            set(original.primary_outputs)
        # The fault universe -- the collapsed stuck-at sites on the
        # combinational core -- survives serialization exactly.
        assert len(build_fault_list(rebuilt.core)) == \
            len(build_fault_list(original.core))

    def test_s27_text_round_trips_twice(self):
        once = read_sequential_bench(S27_BENCH, name="s27")
        text = write_sequential_bench(once)
        twice = read_sequential_bench(text, name="s27")
        assert write_sequential_bench(twice) == text
