"""Standard-cell library: truth tables and metadata."""

import pytest

from repro.core.signal import Logic
from repro.gates import CELLS, CellType, cell


class TestLookup:
    def test_all_cells_present(self):
        assert set(CELLS) == {"AND", "OR", "NAND", "NOR", "XOR", "XNOR",
                              "NOT", "BUF"}

    def test_case_insensitive(self):
        assert cell("nand") is CELLS["NAND"]

    def test_unknown_cell(self):
        with pytest.raises(KeyError):
            cell("MAJ3")


class TestArity:
    def test_unary_cells(self):
        assert cell("NOT").check_arity(1)
        assert not cell("NOT").check_arity(2)
        assert cell("BUF").check_arity(1)

    def test_variadic_cells(self):
        for name in ("AND", "OR", "NAND", "NOR", "XOR", "XNOR"):
            assert not cell(name).check_arity(1)
            assert cell(name).check_arity(2)
            assert cell(name).check_arity(5)


TRUTH = {
    "AND": lambda a, b: a and b,
    "OR": lambda a, b: a or b,
    "NAND": lambda a, b: not (a and b),
    "NOR": lambda a, b: not (a or b),
    "XOR": lambda a, b: a != b,
    "XNOR": lambda a, b: a == b,
}


class TestEvaluation:
    @pytest.mark.parametrize("name", sorted(TRUTH))
    @pytest.mark.parametrize("a", [0, 1])
    @pytest.mark.parametrize("b", [0, 1])
    def test_binary_truth_tables(self, name, a, b):
        expected = Logic.from_bool(TRUTH[name](bool(a), bool(b)))
        assert cell(name).evaluate(Logic(a), Logic(b)) is expected

    def test_unary_cells(self):
        assert cell("NOT").evaluate(Logic.ONE) is Logic.ZERO
        assert cell("BUF").evaluate(Logic.ZERO) is Logic.ZERO

    @pytest.mark.parametrize("name", sorted(CELLS))
    def test_z_treated_as_x(self, name):
        cell_type = cell(name)
        args = [Logic.Z] * (cell_type.arity or 2)
        assert cell_type.evaluate(*args) in (Logic.X, Logic.ZERO,
                                             Logic.ONE)
        assert cell_type.evaluate(*args) is not Logic.Z


class TestMetadata:
    def test_inverting_flags(self):
        assert cell("NAND").inverting and cell("NOT").inverting
        assert not cell("AND").inverting and not cell("BUF").inverting

    def test_positive_physical_data(self):
        for cell_type in CELLS.values():
            assert cell_type.area > 0
            assert cell_type.delay > 0
            assert cell_type.energy > 0

    def test_nand_cheaper_than_and(self):
        # CMOS reality the numbers should reflect: the NAND is the
        # cheapest two-input cell.
        assert cell("NAND").area <= cell("AND").area
        assert cell("NAND").delay < cell("AND").delay
