"""Netlists and single gates as backplane modules."""

import pytest

from repro.core import (BitConnector, Circuit, DesignError, Logic,
                        PatternPrimaryInput, PrimaryOutput,
                        SimulationController, Word, WordConnector)
from repro.gates import (GateLevelModule, LogicGateModule,
                         NetlistSimulator, ripple_carry_adder)


def adder_module(width=4, **kwargs):
    netlist = ripple_carry_adder(width)
    return netlist, GateLevelModule(
        netlist,
        input_map={"a": [f"a{i}" for i in range(width)],
                   "b": [f"b{i}" for i in range(width)]},
        output_map={"s": [f"s{i}" for i in range(width + 1)]},
        name="GLADD", **kwargs)


class TestGateLevelModule:
    def test_word_level_addition(self):
        width = 4
        a, b = WordConnector(width), WordConnector(width)
        s = WordConnector(width + 1)
        netlist, adder = adder_module(width)
        a.attach(adder.port("a"))
        b.attach(adder.port("b"))
        s.attach(adder.port("s"))
        ina = PatternPrimaryInput(width, [3, 9, 15], a, name="INA")
        inb = PatternPrimaryInput(width, [5, 9, 15], b, name="INB")
        out = PrimaryOutput(width + 1, s, name="OUT")
        controller = SimulationController(Circuit(ina, inb, adder, out))
        controller.start()
        values = [v.value for _t, v in out.trace(controller.context)
                  if v.known]
        assert values[-1] == 30
        assert 8 in values and 18 in values

    def test_input_map_must_cover_inputs(self):
        netlist = ripple_carry_adder(2)
        with pytest.raises(DesignError, match="input map"):
            GateLevelModule(netlist, {"a": ["a0", "a1"]},
                            {"s": ["s0", "s1", "s2"]})

    def test_output_map_must_use_primary_outputs(self):
        netlist = ripple_carry_adder(2)
        with pytest.raises(DesignError):
            GateLevelModule(
                netlist,
                {"a": ["a0", "a1"], "b": ["b0", "b1"]},
                {"s": ["fa0_s"]})  # internal net, not a primary output

    def test_energy_trace_accumulates(self):
        width = 4
        a, b = WordConnector(width), WordConnector(width)
        s = WordConnector(width + 1)
        _netlist, adder = adder_module(width, connectors=None)
        a.attach(adder.port("a"))
        b.attach(adder.port("b"))
        s.attach(adder.port("s"))
        ina = PatternPrimaryInput(width, [0, 15, 0, 15], a, name="INA")
        inb = PatternPrimaryInput(width, [0, 15, 0, 15], b, name="INB")
        out = PrimaryOutput(width + 1, s, name="OUT")
        controller = SimulationController(Circuit(ina, inb, adder, out))
        controller.start()
        assert adder.total_energy(controller.context) > 0
        trace = adder.energy_trace(controller.context)
        assert len(trace) > 0

    def test_per_scheduler_engines_are_isolated(self):
        width = 2
        a, b = WordConnector(width), WordConnector(width)
        s = WordConnector(width + 1)
        _netlist, adder = adder_module(width)
        a.attach(adder.port("a"))
        b.attach(adder.port("b"))
        s.attach(adder.port("s"))
        ina = PatternPrimaryInput(width, [1], a, name="INA")
        inb = PatternPrimaryInput(width, [2], b, name="INB")
        out = PrimaryOutput(width + 1, s, name="OUT")
        circuit = Circuit(ina, inb, adder, out)
        first = SimulationController(circuit)
        second = SimulationController(circuit)
        first.start()
        second.start()
        assert out.last_value(first.context) == \
            out.last_value(second.context) == Word(3, width + 1)
        # Independent engines, independent energy traces.
        assert len(adder.energy_trace(first.context)) == \
            len(adder.energy_trace(second.context))

    def test_provider_side_net_view(self):
        width = 2
        a, b = WordConnector(width), WordConnector(width)
        s = WordConnector(width + 1)
        _netlist, adder = adder_module(width)
        a.attach(adder.port("a"))
        b.attach(adder.port("b"))
        s.attach(adder.port("s"))
        ina = PatternPrimaryInput(width, [3], a, name="INA")
        inb = PatternPrimaryInput(width, [1], b, name="INB")
        out = PrimaryOutput(width + 1, s, name="OUT")
        controller = SimulationController(Circuit(ina, inb, adder, out))
        controller.start()
        values = adder.net_values(controller.context)
        assert values["a0"] is Logic.ONE and values["a1"] is Logic.ONE
        assert values["b0"] is Logic.ONE and values["b1"] is Logic.ZERO


class TestLogicGateModule:
    def test_single_gate(self):
        a, b, o = BitConnector(), BitConnector(), BitConnector()
        ina = PatternPrimaryInput(1, [1], a, name="INA")
        inb = PatternPrimaryInput(1, [1], b, name="INB")
        gate = LogicGateModule("NAND", [a, b], o, name="G")
        out = PrimaryOutput(1, o, name="OUT")
        controller = SimulationController(Circuit(ina, inb, gate, out))
        controller.start()
        assert out.last_value(controller.context) is Logic.ZERO

    def test_arity_validation(self):
        with pytest.raises(DesignError):
            LogicGateModule("NOT", [BitConnector(), BitConnector()])

    def test_chained_gates_settle(self):
        a, n1, n2 = BitConnector(), BitConnector(), BitConnector()
        ina = PatternPrimaryInput(1, [0, 1], a, name="INA")
        inv1 = LogicGateModule("NOT", [a], n1, name="G1")
        inv2 = LogicGateModule("NOT", [n1], n2, name="G2")
        out = PrimaryOutput(1, n2, name="OUT")
        controller = SimulationController(Circuit(ina, inv1, inv2, out))
        controller.start()
        values = [v for _t, v in out.trace(controller.context)]
        assert values == [Logic.ZERO, Logic.ONE]
