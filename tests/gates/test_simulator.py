"""Netlist simulators: levelized vs event-driven, fault injection."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import SimulationError
from repro.core.signal import Logic
from repro.faults import StuckAtFault
from repro.gates import (EventDrivenState, Netlist, NetlistSimulator,
                         random_netlist, ripple_carry_adder)


def xor_pair():
    netlist = Netlist("xp")
    netlist.add_input("a")
    netlist.add_input("b")
    netlist.add_output("o")
    netlist.add_gate("XOR", ["a", "b"], "o", name="gx")
    netlist.validate()
    return netlist


class TestLevelized:
    def test_all_nets_reported(self):
        simulator = NetlistSimulator(ripple_carry_adder(2))
        values = simulator.evaluate(
            {net: Logic.ZERO for net in simulator.netlist.inputs})
        assert set(values) == set(simulator.netlist.nets())

    def test_missing_input_rejected(self):
        simulator = NetlistSimulator(xor_pair())
        with pytest.raises(SimulationError, match="missing value"):
            simulator.evaluate({"a": Logic.ONE})

    def test_evaluate_int(self):
        simulator = NetlistSimulator(xor_pair())
        values = simulator.evaluate_int(0b01)  # a=1, b=0
        assert values["o"] is Logic.ONE

    def test_x_propagates(self):
        simulator = NetlistSimulator(xor_pair())
        assert simulator.outputs({"a": Logic.X, "b": Logic.ONE}) == \
            (Logic.X,)


class TestFaultInjection:
    def test_input_stem_fault(self):
        simulator = NetlistSimulator(xor_pair())
        inputs = {"a": Logic.ZERO, "b": Logic.ZERO}
        assert simulator.outputs(inputs) == (Logic.ZERO,)
        fault = StuckAtFault.stem("a", 1)
        assert simulator.outputs(inputs, fault=fault) == (Logic.ONE,)

    def test_output_stem_fault(self):
        simulator = NetlistSimulator(xor_pair())
        inputs = {"a": Logic.ONE, "b": Logic.ZERO}
        fault = StuckAtFault.stem("o", 0)
        assert simulator.outputs(inputs, fault=fault) == (Logic.ZERO,)

    def test_branch_fault_hits_one_pin_only(self):
        netlist = Netlist("branchy")
        netlist.add_input("a")
        netlist.add_output("o1")
        netlist.add_output("o2")
        netlist.add_gate("BUF", ["a"], "o1", name="g1")
        netlist.add_gate("NOT", ["a"], "o2", name="g2")
        netlist.validate()
        simulator = NetlistSimulator(netlist)
        fault = StuckAtFault.branch("a", "g1", 0, 1)
        faulty = simulator.evaluate({"a": Logic.ZERO}, fault=fault)
        assert faulty["o1"] is Logic.ONE      # pin forced
        assert faulty["o2"] is Logic.ONE      # stem untouched

    def test_stem_fault_hits_all_branches(self):
        netlist = Netlist("branchy")
        netlist.add_input("a")
        netlist.add_output("o1")
        netlist.add_output("o2")
        netlist.add_gate("BUF", ["a"], "o1", name="g1")
        netlist.add_gate("NOT", ["a"], "o2", name="g2")
        netlist.validate()
        simulator = NetlistSimulator(netlist)
        fault = StuckAtFault.stem("a", 1)
        faulty = simulator.evaluate({"a": Logic.ZERO}, fault=fault)
        assert faulty["o1"] is Logic.ONE
        assert faulty["o2"] is Logic.ZERO


class TestEventDriven:
    def test_initial_state_is_x(self):
        state = EventDrivenState(NetlistSimulator(xor_pair()))
        assert state.value_of("o") is Logic.X

    def test_apply_returns_toggled_nets(self):
        state = EventDrivenState(NetlistSimulator(xor_pair()))
        toggled = state.apply({"a": Logic.ONE, "b": Logic.ZERO})
        assert {"a", "b", "o"} <= toggled
        # Re-applying the same values toggles nothing.
        assert state.apply({"a": Logic.ONE, "b": Logic.ZERO}) == set()

    def test_only_cone_re_evaluated(self):
        netlist = ripple_carry_adder(8)
        state = EventDrivenState(NetlistSimulator(netlist))
        state.apply({net: Logic.ZERO for net in netlist.inputs})
        before = state.evaluated_gates
        # Touching one high-order bit re-evaluates only its cone.
        state.apply({"a7": Logic.ONE})
        assert state.evaluated_gates - before < netlist.gate_count() / 2

    def test_non_input_rejected(self):
        state = EventDrivenState(NetlistSimulator(xor_pair()))
        with pytest.raises(SimulationError):
            state.apply({"o": Logic.ONE})

    def test_wave_evaluates_reconvergent_gate_once(self):
        # Diamond: a feeds two NOTs that reconverge on one AND.  The
        # level-ordered wave must evaluate the AND exactly once per
        # applied stimulus even though both its inputs go dirty.
        netlist = Netlist("diamond")
        netlist.add_input("a")
        netlist.add_output("o")
        netlist.add_gate("NOT", ["a"], "n1")
        netlist.add_gate("NOT", ["a"], "n2")
        netlist.add_gate("AND", ["n1", "n2"], "o")
        netlist.validate()
        state = EventDrivenState(NetlistSimulator(netlist))
        state.apply({"a": Logic.ZERO})
        before = state.evaluated_gates
        state.apply({"a": Logic.ONE})
        assert state.evaluated_gates - before == 3

    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(0, 10_000),
           stimulus=st.lists(st.integers(0, 2**6 - 1), min_size=1,
                             max_size=8))
    def test_matches_levelized_on_random_netlists(self, seed, stimulus):
        """Event-driven incremental evaluation always agrees with a full
        levelized pass -- the core equivalence behind toggle counting."""
        netlist = random_netlist(6, 25, 3, seed=seed)
        simulator = NetlistSimulator(netlist)
        state = EventDrivenState(simulator)
        for word in stimulus:
            inputs = {net: Logic((word >> i) & 1)
                      for i, net in enumerate(netlist.inputs)}
            state.apply(inputs)
            reference = simulator.evaluate(inputs)
            for net in netlist.nets():
                assert state.value_of(net) is reference[net], net
