"""Static servant analysis: purity, marshallability, privacy."""

import os
import textwrap

import pytest

import repro
from repro.lint import Severity, lint_servant_source, lint_sources
from repro.lint.servants import (default_pure_methods,
                                 marshallable_type_names)

FIXTURES = os.path.join(os.path.dirname(__file__), "servant_fixtures.py")


def lint_text(source, **kwargs):
    return lint_servant_source(textwrap.dedent(source), **kwargs)


def codes(findings):
    return sorted(f.code for f in findings)


class TestFixtureFile:
    """The seeded-defect fixture trips every servant rule."""

    def setup_method(self):
        self.findings = lint_sources([FIXTURES])

    def by_code(self, code):
        return [f for f in self.findings if f.code == code]

    def test_impure_pure_method_flagged(self):
        impure = self.by_code("JCD010")
        messages = " | ".join(f.message for f in impure)
        assert "ImpureCatalogServant.describe" in messages
        assert "assigns to servant state" in messages
        assert "calls mutating append()" in messages
        # reset_stats is NOT pure, so its mutation is fine.
        assert "reset_stats" not in messages

    def test_privacy_leaks_flagged(self):
        leaks = self.by_code("JCD012")
        messages = " | ".join(f.message for f in leaks)
        assert "internals" in messages and "gate_dump" in messages
        # Data-sheet scalars (name, gate_count()) are not leaks.
        assert "summary" not in messages

    def test_unmarshallable_return_flagged(self):
        bad = self.by_code("JCD011")
        messages = " | ".join(f.message for f in bad)
        assert "fetch_netlist" in messages and "Netlist" in messages
        # DetectionTable is a registered value type.
        assert "fetch_table" not in messages

    def test_stale_whitelist_flagged(self):
        stale = self.by_code("JCD013")
        messages = " | ".join(f.message for f in stale)
        assert "vanished" in messages
        assert "local_only" in messages
        assert all(f.severity is Severity.WARNING for f in stale)

    def test_inline_waiver_respected(self):
        messages = " | ".join(f.message for f in self.findings)
        assert "WaivedCounterServant" not in messages

    def test_findings_carry_file_and_line(self):
        for item in self.findings:
            assert item.target == FIXTURES
            assert item.line is not None and item.line > 0


class TestPurityRule:
    def test_global_and_nonlocal_flagged(self):
        findings = lint_text("""
            class S:
                REMOTE_METHODS = ("describe",)
                def describe(self):
                    global hits
                    hits = 1
                    return {}
        """)
        assert "JCD010" in codes(findings)
        assert "global" in findings[0].message

    def test_del_of_servant_state_flagged(self):
        findings = lint_text("""
            class S:
                REMOTE_METHODS = ("evaluate",)
                def evaluate(self, x):
                    del self.cache[x]
                    return x
        """)
        assert codes(findings) == ["JCD010"]

    def test_local_mutation_is_fine(self):
        findings = lint_text("""
            class S:
                REMOTE_METHODS = ("describe",)
                def describe(self):
                    rows = []
                    rows.append(1)
                    table = {}
                    table.update(a=1)
                    return {"rows": rows}
        """)
        assert findings == []

    def test_class_pure_methods_literal_overrides_stock(self):
        # "fetch" is not in the stock whitelist, but the class
        # declares it pure -- so its mutation must be flagged.
        findings = lint_text("""
            class S:
                REMOTE_METHODS = ("fetch",)
                PURE_METHODS = ("fetch",)
                def fetch(self):
                    self.n = 1
                    return {}
        """)
        assert "JCD010" in codes(findings)

    def test_waiver_on_def_line_covers_whole_method(self):
        findings = lint_text("""
            class S:
                REMOTE_METHODS = ("describe",)
                def describe(self):  # lint: allow(JCD010)
                    self.a = 1
                    self.b = 2
                    return {}
        """)
        assert findings == []


class TestMarshalRule:
    def test_optional_registered_type_is_clean(self):
        findings = lint_text("""
            from typing import Optional
            class S:
                REMOTE_METHODS = ("fault_list",)
                def fault_list(self) -> Optional[str]:
                    return None
        """)
        assert findings == []

    def test_unknown_type_is_a_warning_not_error(self):
        findings = lint_text("""
            class S:
                REMOTE_METHODS = ("describe",)
                def describe(self) -> Widget:
                    return Widget()
        """)
        assert codes(findings) == ["JCD011"]
        assert findings[0].severity is Severity.WARNING

    def test_quoted_annotation_is_resolved(self):
        findings = lint_text("""
            class S:
                REMOTE_METHODS = ("describe",)
                def describe(self) -> "Netlist":
                    return self._impl
        """)
        assert "JCD011" in codes(findings)
        assert findings[0].severity is Severity.ERROR

    def test_syntax_error_reported_as_finding(self):
        findings = lint_servant_source("def broken(:\n    pass\n",
                                       path="bad.py")
        assert codes(findings) == ["JCD011"]
        assert "cannot parse" in findings[0].message

    def test_registered_types_visible(self):
        names = marshallable_type_names()
        assert {"DetectionTable", "ParamValue", "Frame"} <= names

    def test_default_pure_methods_matches_cache_policy(self):
        assert "detection_table" in default_pure_methods()


class TestPrivacyRule:
    def test_annotated_protected_param_taints_attribute(self):
        findings = lint_text("""
            class S:
                REMOTE_METHODS = ("dump",)
                def __init__(self, impl: "Netlist"):
                    self._thing = impl
                def dump(self):
                    return self._thing
        """)
        assert codes(findings) == ["JCD012"]

    def test_structure_method_call_flagged(self):
        findings = lint_text("""
            class S:
                REMOTE_METHODS = ("dump",)
                def __init__(self, netlist):
                    self._n = netlist
                def dump(self):
                    return tuple(self._n.nets())
        """)
        assert codes(findings) == ["JCD012"]

    def test_scalar_summaries_are_clean(self):
        findings = lint_text("""
            class S:
                REMOTE_METHODS = ("describe",)
                def __init__(self, netlist):
                    self._n = netlist
                def describe(self):
                    return {"name": self._n.name,
                            "area": self._n.area(),
                            "gates": self._n.gate_count()}
        """)
        assert findings == []

    def test_passing_structure_as_argument_is_not_a_return_leak(self):
        findings = lint_text("""
            class S:
                REMOTE_METHODS = ("evaluate",)
                def __init__(self, netlist):
                    self._n = netlist
                def evaluate(self, pattern):
                    return simulate(self._n, pattern)
        """)
        assert findings == []


class TestRepoIsClean:
    """Acceptance: the repo's own servants pass their own analyzers."""

    def test_src_repro_has_no_servant_errors(self):
        package_dir = os.path.dirname(os.path.abspath(repro.__file__))
        findings = lint_sources([package_dir])
        errors = [f for f in findings if f.severity >= Severity.ERROR]
        assert errors == [], "\n".join(f.format() for f in errors)


class TestDiscovery:
    def test_missing_path_raises(self):
        with pytest.raises(FileNotFoundError):
            lint_sources(["/no/such/path"])

    def test_classes_without_remote_methods_ignored(self):
        findings = lint_text("""
            class NotAServant:
                def describe(self):
                    self.calls += 1
                    return {}
        """)
        assert findings == []
