"""Differential regression pinning the two adjudicated counter waivers.

``repro.estimation.setup._setup_ids`` and
``repro.parallel.remote._pool_nonces`` were flagged by the JCD014
discovery and adjudicated as *waived* rather than added to
``COUNTER_SITES``: their values are claimed never to shape marshalled
bytes (setup wire paths pass explicit names; pool nonces are opaque
local task keys).  These tests prove that claim by advancing each
counter far between two otherwise identical runs and asserting the
observable outputs are byte-identical.  If either counter ever starts
leaking into wire traffic, the waiver must be revoked and the site
promoted into ``COUNTER_SITES`` -- and this test will say so first.
"""

import random

from repro.bench.scenarios import LOCALHOST, run_scenario
from repro.core.signal import Logic
from repro.estimation import setup as estimation_setup
from repro.faults.faultlist import build_fault_list
from repro.parallel import diff_reports, remote
from repro.parallel.remote import remote_fault_simulate, resolve_bench
from repro.parallel.scenarios import reset_session_state
from tests.parallel.test_remote import fault_farm


def _burn(counter, steps):
    for _ in range(steps):
        next(counter)


def _er_scenario():
    # reset_session_state rewinds the inventoried COUNTER_SITES (which
    # legitimately shape frame bytes) so the only state differing
    # between the two runs is the counter under adjudication.
    reset_session_state()
    return run_scenario("ER", LOCALHOST, width=4, patterns=5,
                        buffer_size=2)


class TestSetupIdsWaiver:
    def test_setup_ids_never_reach_the_wire(self):
        baseline = _er_scenario()
        _burn(estimation_setup._setup_ids, 500)
        advanced = _er_scenario()
        assert advanced.remote_bytes == baseline.remote_bytes
        assert advanced.remote_calls == baseline.remote_calls
        assert advanced.events == baseline.events

    def test_setup_ids_only_shape_the_default_name(self):
        # The counter exists purely to synthesize default names for
        # anonymous controllers; explicit names bypass it entirely.
        anonymous = estimation_setup.SetupController()
        named = estimation_setup.SetupController(name="er-setup")
        assert anonymous.name == f"setup{anonymous.setup_id}"
        assert named.name == "er-setup"


class TestPoolNoncesWaiver:
    def _campaign(self, patterns=12, seed=3):
        netlist = resolve_bench("figure4")
        fault_list = build_fault_list(netlist)
        rng = random.Random(seed)
        pattern_set = [{net: Logic(rng.getrandbits(1))
                        for net in netlist.inputs}
                       for _ in range(patterns)]
        return netlist, fault_list, pattern_set

    def test_pool_nonces_never_reach_the_report(self):
        _netlist, _faults, patterns = self._campaign()
        with fault_farm(1) as (endpoints, _):
            baseline = remote_fault_simulate("figure4", patterns,
                                             endpoints)
        _burn(remote._pool_nonces, 1000)
        with fault_farm(1) as (endpoints, _):
            advanced = remote_fault_simulate("figure4", patterns,
                                             endpoints)
        assert diff_reports(advanced, baseline) == []
