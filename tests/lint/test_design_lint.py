"""Design lint: structural rules over circuits (JCD001-JCD005, 009)."""

from types import SimpleNamespace

import pytest

from repro.core import (BitConnector, Circuit, Design, ModuleSkeleton,
                        PortDirection, connect)
from repro.estimation import SetupController
from repro.lint import Severity, lint_circuit, lint_design, lint_setup
from repro.lint.runner import run_lint
from repro.telemetry import TELEMETRY, telemetry_session


class Sink(ModuleSkeleton):
    """A module that actually handles input events."""

    def process_input_event(self, token, ctx):
        pass


def codes(findings):
    return sorted(f.code for f in findings)


def clean_circuit():
    source = ModuleSkeleton(name="src")
    source.add_port("q", PortDirection.OUT)
    sink = Sink(name="snk")
    sink.add_port("d", PortDirection.IN)
    connect(source.port("q"), sink.port("d"))
    return Circuit(source, sink, name="clean")


class TestCleanCircuit:
    def test_zero_findings(self):
        assert lint_circuit(clean_circuit()) == []


class TestUnconnectedInput:
    def test_jcd001(self):
        sink = Sink(name="snk")
        sink.add_port("d", PortDirection.IN)
        findings = lint_circuit(Circuit(sink, name="c"))
        assert codes(findings) == ["JCD001"]
        assert "snk.d" in findings[0].message
        assert findings[0].severity is Severity.ERROR

    def test_dangling_output_is_legal(self):
        source = ModuleSkeleton(name="src")
        source.add_port("q", PortDirection.OUT)
        assert lint_circuit(Circuit(source, name="c")) == []


class TestSilentModule:
    def test_jcd005(self):
        mute = ModuleSkeleton(name="mute")
        mute.add_port("d", PortDirection.IN)
        driver = ModuleSkeleton(name="drv")
        driver.add_port("q", PortDirection.OUT)
        connect(driver.port("q"), mute.port("d"))
        findings = lint_circuit(Circuit(driver, mute, name="c"))
        assert codes(findings) == ["JCD005"]
        assert findings[0].severity is Severity.WARNING

    def test_any_hook_override_counts(self):
        assert lint_circuit(clean_circuit()) == []


class TestConnectorRules:
    def test_jcd002_dangling_connector(self):
        source = ModuleSkeleton(name="src")
        source.add_port("q", PortDirection.OUT)
        connector = BitConnector(name="stub")
        connector.attach(source.port("q"))
        findings = lint_circuit(Circuit(source, name="c"))
        assert codes(findings) == ["JCD002"]
        assert "stub" in findings[0].message

    def test_jcd003_conflicting_drivers(self):
        a = ModuleSkeleton(name="a")
        a.add_port("q", PortDirection.OUT)
        b = ModuleSkeleton(name="b")
        b.add_port("q", PortDirection.OUT)
        connect(a.port("q"), b.port("q"))
        findings = lint_circuit(Circuit(a, b, name="c"))
        assert codes(findings) == ["JCD003"]
        assert "2 output ports" in findings[0].message

    def test_jcd003_no_possible_driver_is_warning(self):
        a = Sink(name="a")
        a.add_port("d", PortDirection.IN)
        b = Sink(name="b")
        b.add_port("d", PortDirection.IN)
        connect(a.port("d"), b.port("d"))
        findings = lint_circuit(Circuit(a, b, name="c"))
        assert codes(findings) == ["JCD003"]
        assert findings[0].severity is Severity.WARNING

    def test_jcd003_three_endpoints(self):
        circuit = clean_circuit()
        connector = circuit.connectors()[0]
        extra = Sink(name="extra")
        extra.add_port("d", PortDirection.IN)
        # Bypass attach() to seed the defect it normally prevents:
        # lint must still catch hand-rolled or subclassed wiring.
        connector._endpoints.append(extra.port("d"))
        extra.port("d").connector = connector
        findings = lint_circuit(Circuit(*circuit.modules, extra,
                                        name="c"))
        assert "JCD003" in codes(findings)

    def test_jcd004_width_mismatch(self):
        circuit = clean_circuit()
        connector = circuit.connectors()[0]
        wide = Sink(name="wide")
        wide.add_port("d", PortDirection.IN, width=8)
        connector._endpoints.remove(
            circuit.module("snk").port("d"))
        circuit.module("snk").port("d").connector = None
        connector._endpoints.append(wide.port("d"))
        wide.port("d").connector = connector
        findings = lint_circuit(
            Circuit(circuit.module("src"), wide, name="c"))
        assert "JCD004" in codes(findings)
        [mismatch] = [f for f in findings if f.code == "JCD004"]
        assert "width 8" in mismatch.message


class TestDesignDispatch:
    def test_lint_design_builds_and_lints(self):
        class Clean(Design):
            def design(self):
                return clean_circuit()

        assert lint_design(Clean()) == []

    def test_broken_build_is_a_finding_not_a_crash(self):
        class Broken(Design):
            def design(self):
                return None

        findings = lint_design(Broken())
        assert codes(findings) == ["JCD001"]
        assert "failed to build" in findings[0].message

    def test_run_lint_rejects_unknown_subjects(self):
        with pytest.raises(TypeError, match="Design, Circuit or"):
            run_lint(object())

    def test_run_lint_suppression(self):
        sink = Sink(name="snk")
        sink.add_port("d", PortDirection.IN)
        circuit = Circuit(sink, name="c")
        assert run_lint(circuit, suppress={"JCD001"}) == []


class TestSetupCoverage:
    def test_jcd009_uncovered_parameter(self):
        from repro.estimation import MaxAccuracy

        setup = SetupController(name="s")
        setup.set("power", MaxAccuracy())
        findings = lint_setup(setup, clean_circuit())
        assert codes(findings) == ["JCD009"]
        assert "power" in findings[0].message
        assert findings[0].severity is Severity.WARNING

    def test_covered_parameter_is_clean(self):
        from repro.estimation import MaxAccuracy

        circuit = clean_circuit()
        circuit.module("src").add_estimator(
            SimpleNamespace(parameter="power"))
        setup = SetupController(name="s")
        setup.set("power", MaxAccuracy())
        assert lint_setup(setup, circuit) == []


class TestTelemetry:
    def setup_method(self):
        TELEMETRY.disable()
        TELEMETRY.reset()

    def teardown_method(self):
        TELEMETRY.disable()
        TELEMETRY.reset()

    def test_lint_counters_emitted(self):
        sink = Sink(name="snk")
        sink.add_port("d", PortDirection.IN)
        circuit = Circuit(sink, name="c")
        with telemetry_session():
            run_lint(circuit)
            run_lint(circuit, suppress={"JCD001"})
            assert TELEMETRY.metrics.counter("lint.runs").value == 2
            assert TELEMETRY.metrics.counter(
                "lint.findings").value == 1
            assert TELEMETRY.metrics.counter(
                "lint.findings.error").value == 1
            assert TELEMETRY.metrics.counter(
                "lint.suppressed").value == 1

    def test_no_counters_when_disabled(self):
        sink = Sink(name="snk")
        sink.add_port("d", PortDirection.IN)
        run_lint(Circuit(sink, name="c"))
        assert TELEMETRY.metrics.names() == ()
