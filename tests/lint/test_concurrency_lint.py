"""Concurrency rules JCD014-JCD019: firing, scoping, waivers."""

import os

import repro
from repro.lint import lint_concurrency, lint_concurrency_sources

FIXTURES = os.path.join(os.path.dirname(__file__),
                        "concurrency_fixtures.py")
SEEDED_SERVER = os.path.join(os.path.dirname(__file__), "data",
                             "seeded_server")


def codes(findings):
    return sorted({item.code for item in findings})


def lint_one(name, source, **extra):
    sources = {name: source}
    sources.update(extra)
    return lint_concurrency_sources(sources)


DISPATCHING = """
class AsyncRMIServer:
    def _handle(self, frame):
        return stamp(frame)
"""


class TestJCD014UndeclaredCounter:
    consumer = DISPATCHING + """

def stamp(frame):
    return next(_frame_ids)
"""

    def test_reachable_undeclared_counter_fires(self):
        findings = lint_one("repro.fake", self.consumer + """
import itertools
_frame_ids = itertools.count(1)
""")
        assert codes(findings) == ["JCD014"]
        assert "_frame_ids" in findings[0].message

    def test_declared_counter_passes(self):
        findings = lint_one("repro.fake", self.consumer + """
import itertools
_frame_ids = itertools.count(1)
COUNTER_SITES = (("repro.fake", "_frame_ids"),)
""")
        assert findings == []

    def test_declaration_in_another_module_counts(self):
        findings = lint_one("repro.fake", self.consumer + """
import itertools
_frame_ids = itertools.count(1)
""", **{"repro.inventory":
        'COUNTER_SITES = (("repro.fake", "_frame_ids"),)\n'})
        assert findings == []

    def test_unreachable_counter_passes(self):
        findings = lint_one("repro.fake", """
import itertools
_frame_ids = itertools.count(1)


def untouched():
    return next(_frame_ids)
""")
        assert findings == []

    def test_waiver_on_the_assignment_line(self):
        findings = lint_one("repro.fake", self.consumer + """
import itertools
_frame_ids = itertools.count(1)  # lint: allow(JCD014)
""")
        assert findings == []


class TestJCD015AsyncBlocking:
    blocking = """
import time


class Handler:
    async def serve(self, frame):
        time.sleep(1)
        return frame
"""

    def test_fires_only_in_repro_server_modules(self):
        assert codes(lint_one("repro.server.fake",
                              self.blocking)) == ["JCD015"]
        assert lint_one("repro.client.fake", self.blocking) == []

    def test_awaited_calls_pass(self):
        findings = lint_one("repro.server.fake", """
class Handler:
    async def serve(self, loop, executor, frame, lock):
        async with lock:
            return await loop.run_in_executor(executor, len, frame)
""")
        assert findings == []

    def test_future_result_and_acquire_fire(self):
        findings = lint_one("repro.server.fake", """
class Handler:
    async def serve(self, future, lock):
        lock.acquire()
        return future.result()
""")
        assert len(findings) == 2
        assert codes(findings) == ["JCD015"]

    def test_sync_def_is_out_of_scope(self):
        findings = lint_one("repro.server.fake", """
import time


def serve(frame):
    time.sleep(1)
    return frame
""")
        assert findings == []

    def test_waiver_on_the_def_line(self):
        findings = lint_one("repro.server.fake", """
import time


class Handler:
    async def serve(self, frame):  # lint: allow(JCD015)
        time.sleep(1)
        return frame
""")
        assert findings == []


class TestJCD016ForkSafety:
    def test_executor_before_fork_point_fires(self):
        findings = lint_one("repro.fake", """
def boot(factory):
    pool = ThreadPoolExecutor(max_workers=2)
    dispatcher = ProcessDispatcher(factory, 2)
    return pool, dispatcher
""")
        assert codes(findings) == ["JCD016"]

    def test_executor_after_fork_point_passes(self):
        findings = lint_one("repro.fake", """
def boot(factory):
    dispatcher = ProcessDispatcher(factory, 2)
    pool = ThreadPoolExecutor(max_workers=2)
    return pool, dispatcher
""")
        assert findings == []

    def test_thread_starting_initializer_fires(self):
        findings = lint_one("repro.fake", """
import threading
from concurrent.futures import ProcessPoolExecutor


def warm():
    threading.Thread(target=print).start()


def spawn():
    return ProcessPoolExecutor(max_workers=1, initializer=warm)
""")
        assert codes(findings) == ["JCD016"]

    def test_quiet_initializer_passes(self):
        findings = lint_one("repro.fake", """
from concurrent.futures import ProcessPoolExecutor


def warm():
    return None


def spawn():
    return ProcessPoolExecutor(max_workers=1, initializer=warm)
""")
        assert findings == []


class TestJCD017SharedMutation:
    def test_unguarded_module_state_fires(self):
        findings = lint_one("repro.fake", DISPATCHING + """

_cache = {}


def stamp(frame):
    _cache[frame] = True
    return frame
""")
        assert codes(findings) == ["JCD017"]

    def test_lock_guarded_mutation_passes(self):
        findings = lint_one("repro.fake", DISPATCHING + """
import threading

_cache = {}
_cache_lock = threading.Lock()


def stamp(frame):
    with _cache_lock:
        _cache[frame] = True
    return frame
""")
        assert findings == []

    def test_gate_guarded_mutation_passes(self):
        findings = lint_one("repro.fake", DISPATCHING + """

_sessions = {}


def stamp(frame):
    with _gate.isolated(frame):
        _sessions[frame] = True
    return frame
""")
        assert findings == []

    def test_unreachable_mutation_passes(self):
        findings = lint_one("repro.fake", """
_cache = {}


def offline_tool(frame):
    _cache[frame] = True
    return frame
""")
        assert findings == []

    def test_class_level_mutable_state_fires(self):
        findings = lint_one("repro.fake", """
class AsyncRMIServer:
    registry = {}

    def _handle(self, frame):
        self.registry[frame] = True
        return frame
""")
        assert codes(findings) == ["JCD017"]

    def test_mutating_call_fires(self):
        findings = lint_one("repro.fake", DISPATCHING + """

_log = []


def stamp(frame):
    _log.append(frame)
    return frame
""")
        assert codes(findings) == ["JCD017"]


class TestJCD018ServantNondeterminism:
    def wrap(self, body):
        return f"""
import os
import random
import time


class Probe:
    REMOTE_METHODS = ("sample",)

    def sample(self):
{body}
"""

    def test_wall_clock_fires(self):
        findings = lint_one("repro.fake", self.wrap(
            "        return time.time()"))
        assert codes(findings) == ["JCD018"]

    def test_module_random_fires(self):
        findings = lint_one("repro.fake", self.wrap(
            "        return random.random()"))
        assert codes(findings) == ["JCD018"]

    def test_urandom_and_id_fire(self):
        findings = lint_one("repro.fake", self.wrap(
            "        return id(os.urandom(4))"))
        assert len(findings) == 2

    def test_set_iteration_fires(self):
        findings = lint_one("repro.fake", self.wrap(
            '        return [tag for tag in {"a", "b"}]'))
        assert codes(findings) == ["JCD018"]

    def test_sorted_set_and_seeded_rng_pass(self):
        findings = lint_one("repro.fake", self.wrap(
            '        rng = random.Random(0)\n'
            '        return sorted({"a", "b"}) + [rng.random()]'))
        assert findings == []

    def test_non_servant_class_is_out_of_scope(self):
        findings = lint_one("repro.fake", """
import time


class LocalOnly:
    def sample(self):
        return time.time()
""")
        assert findings == []


class TestJCD019StaleSite:
    def test_vanished_attribute_fires(self):
        findings = lint_one("repro.fake", """
COUNTER_SITES = (("repro.fake", "_gone_ids"),)
""")
        assert codes(findings) == ["JCD019"]
        assert "_gone_ids" in findings[0].message

    def test_attribute_that_stopped_counting_fires(self):
        findings = lint_one("repro.fake", """
_gone_ids = "retired"
COUNTER_SITES = (("repro.fake", "_gone_ids"),)
""")
        assert codes(findings) == ["JCD019"]
        assert "no longer an" in findings[0].message

    def test_live_site_passes(self):
        findings = lint_one("repro.fake", """
import itertools

_live_ids = itertools.count(1)
COUNTER_SITES = (("repro.fake", "_live_ids"),)
""")
        assert findings == []

    def test_module_outside_the_sweep_is_not_judged(self):
        findings = lint_one("repro.fake", """
COUNTER_SITES = (("repro.elsewhere", "_ids"),)
""")
        assert findings == []


class TestRealTreeAndFixtures:
    def test_src_repro_sweeps_clean(self):
        package_dir = os.path.dirname(repro.__file__)
        assert lint_concurrency([package_dir]) == []

    def test_seeded_fixtures_trip_all_six_codes(self):
        findings = lint_concurrency([FIXTURES, SEEDED_SERVER])
        assert codes(findings) == ["JCD014", "JCD015", "JCD016",
                                   "JCD017", "JCD018", "JCD019"]

    def test_guarded_fixture_mutation_is_not_reported(self):
        findings = lint_concurrency([FIXTURES])
        tidy = [item for item in findings
                if "tidy" in item.message]
        assert tidy == []
