"""The ``repro lint`` subcommand: formats, thresholds, exit codes."""

import json
import os

from repro.cli import main

DATA = os.path.join(os.path.dirname(__file__), "data")
LOOP = os.path.join(DATA, "loop.bench")
UNDRIVEN = os.path.join(DATA, "undriven.bench")
FIXTURES = os.path.join(os.path.dirname(__file__),
                        "servant_fixtures.py")


class TestExitCodes:
    def test_default_sweep_is_clean(self, capsys):
        assert main(["lint"]) == 0
        assert "no findings" in capsys.readouterr().out

    def test_defective_bench_fails(self, capsys):
        assert main(["lint", "--design", LOOP]) == 1
        out = capsys.readouterr().out
        assert "JCD006" in out and "combinational loop" in out

    def test_defective_servants_fail(self, capsys):
        assert main(["lint", "--servants", FIXTURES]) == 1
        out = capsys.readouterr().out
        assert "JCD010" in out and "JCD012" in out

    def test_builtin_bench_by_name(self, capsys):
        assert main(["lint", "--design", "c17"]) == 0
        assert "no findings" in capsys.readouterr().out

    def test_unknown_bench_is_usage_error(self, capsys):
        assert main(["lint", "--design", "nope.bench"]) == 2
        assert "neither a file" in capsys.readouterr().err

    def test_unknown_servant_module_is_usage_error(self, capsys):
        assert main(["lint", "--servants", "no.such.module"]) == 2
        assert "neither a path" in capsys.readouterr().err


class TestThresholds:
    def test_warnings_pass_by_default(self, capsys):
        # The stale-whitelist rule is warning-severity: suppress the
        # error-level rules and the run must pass --fail-on error.
        code = main(["lint", "--servants", FIXTURES,
                     "--suppress", "JCD010", "--suppress", "JCD011",
                     "--suppress", "JCD012"])
        out = capsys.readouterr().out
        assert code == 0
        assert "JCD013" in out

    def test_fail_on_warning_tightens(self):
        assert main(["lint", "--servants", FIXTURES,
                     "--suppress", "JCD010", "--suppress", "JCD011",
                     "--suppress", "JCD012",
                     "--fail-on", "warning"]) == 1

    def test_suppress_everything_passes(self, capsys):
        code = main(["lint", "--design", LOOP,
                     "--suppress", "JCD006"])
        assert code == 0
        assert "no findings" in capsys.readouterr().out

    def test_unknown_suppress_code_is_usage_error(self, capsys):
        assert main(["lint", "--suppress", "JCD999"]) == 2
        assert "unknown rule code" in capsys.readouterr().err


class TestJsonFormat:
    def test_json_payload_shape(self, capsys):
        assert main(["lint", "--design", UNDRIVEN,
                     "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["counts"]["error"] == 2
        sites = {item["code"] for item in payload["findings"]}
        assert sites == {"JCD007"}
        for item in payload["findings"]:
            assert set(item) == {"code", "severity", "message",
                                 "target", "line"}

    def test_text_format_has_summary_line(self, capsys):
        main(["lint", "--design", UNDRIVEN])
        out = capsys.readouterr().out.strip().splitlines()
        assert out[-1] == "2 findings (2 errors)"


class TestCombinedRun:
    def test_designs_and_servants_combine(self, capsys):
        assert main(["lint", "--design", LOOP,
                     "--servants", FIXTURES]) == 1
        out = capsys.readouterr().out
        assert "JCD006" in out and "JCD010" in out
