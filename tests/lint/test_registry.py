"""The rule registry: codes, severities, suppression, findings."""

import pytest

from repro.lint import Finding, Severity, all_rules, finding, rule
from repro.lint.registry import (check_codes, filter_suppressed,
                                 register_rule)

EXPECTED_CODES = [f"JCD{i:03d}" for i in range(1, 20)]


class TestCatalog:
    def test_all_shipped_rules_registered(self):
        assert [r.code for r in all_rules()] == EXPECTED_CODES

    def test_rule_lookup(self):
        declared = rule("JCD001")
        assert declared.name == "unconnected-input-port"
        assert declared.severity is Severity.ERROR

    def test_unknown_code_raises(self):
        with pytest.raises(ValueError, match="unknown rule code"):
            rule("JCD999")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_rule("JCD001", "again", Severity.INFO, "dup")

    def test_malformed_code_rejected(self):
        with pytest.raises(ValueError, match="does not match"):
            register_rule("XYZ1", "bad", Severity.INFO, "bad code")


class TestFindings:
    def test_finding_inherits_rule_severity(self):
        item = finding("JCD001", "boom", "c.m.p")
        assert item.severity is Severity.ERROR
        assert item.location == "c.m.p"

    def test_severity_override_and_line(self):
        item = finding("JCD003", "soft case", "file.py", line=7,
                       severity=Severity.WARNING)
        assert item.severity is Severity.WARNING
        assert item.location == "file.py:7"
        assert "warning" in item.format() and "JCD003" in item.format()

    def test_as_dict_round_trips_severity_name(self):
        item = finding("JCD002", "msg", "t")
        assert item.as_dict()["severity"] == "warning"

    def test_severity_parse(self):
        assert Severity.parse("Error") is Severity.ERROR
        with pytest.raises(ValueError, match="unknown severity"):
            Severity.parse("fatal")

    def test_severity_ordering(self):
        assert Severity.ERROR > Severity.WARNING > Severity.INFO


class TestSuppression:
    def _findings(self):
        return [finding("JCD001", "a", "x"),
                finding("JCD002", "b", "y"),
                finding("JCD001", "c", "z")]

    def test_filter_by_code(self):
        kept, dropped = filter_suppressed(self._findings(), {"JCD001"})
        assert [f.code for f in kept] == ["JCD002"]
        assert dropped == 2

    def test_empty_suppression_keeps_everything(self):
        kept, dropped = filter_suppressed(self._findings())
        assert len(kept) == 3 and dropped == 0

    def test_unknown_suppression_code_raises(self):
        with pytest.raises(ValueError, match="unknown rule code"):
            check_codes({"JCD001", "JCD777"})

    def test_findings_are_frozen(self):
        item = finding("JCD001", "a", "x")
        with pytest.raises(AttributeError):
            item.code = "JCD002"
        assert isinstance(item, Finding)
