"""Meta-test: COUNTER_SITES, reset_session_state and JCD014 agree.

Three artifacts describe the same set of process-wide counters:

* ``repro.server.session.COUNTER_SITES`` -- the hand-maintained
  inventory the per-session isolation gate and the worker reset act on;
* ``repro.parallel.scenarios.reset_session_state`` -- rewinds every
  inventoried site in a freshly forked worker;
* the JCD014 call-graph discovery -- finds every module-level counter
  in ``src/repro`` mechanically.

If they drift apart, a counter either leaks across sessions untouched
by the gate (inventory too small) or the JCD019 rule starts lying
about stale entries (inventory too big).  This test pins the three
views to each other.
"""

import importlib
import itertools
import os

import repro
from repro.lint.callgraph import CallGraph
from repro.lint.concurrency import lint_call_graph
from repro.parallel.scenarios import reset_session_state
from repro.server.session import COUNTER_SITES

ADJUDICATED_WAIVERS = frozenset({
    # Waived with inline comments rather than inventoried: the wire
    # paths pass explicit names / opaque nonces, so their values never
    # shape marshalled bytes.  tests/lint/test_counter_adjudication.py
    # proves that differentially.
    ("repro.estimation.setup", "_setup_ids"),
    ("repro.parallel.remote", "_pool_nonces"),
    # Repr-only: token ids appear in debugging reprs, never on the
    # wire.
    ("repro.core.token", "_token_ids"),
    # Dispatcher ids key a registry keyed per-object; never marshalled.
    ("repro.server.dispatch", "_dispatcher_ids"),
})


def real_tree_graph():
    package_dir = os.path.dirname(repro.__file__)
    return CallGraph.from_files(
        sorted(os.path.join(root, name)
               for root, _dirs, names in os.walk(package_dir)
               for name in names if name.endswith(".py")))


class TestInventoryAgainstDiscovery:
    def test_every_inventoried_site_is_discovered(self):
        discovered = real_tree_graph().discovered_sites()
        missing = set(COUNTER_SITES) - discovered
        assert missing == set(), (
            f"COUNTER_SITES entries the JCD014 discovery cannot see "
            f"(stale inventory?): {sorted(missing)}")

    def test_adjudicated_waivers_are_still_real_counters(self):
        discovered = real_tree_graph().discovered_sites()
        gone = ADJUDICATED_WAIVERS - discovered
        assert gone == set(), (
            f"waived counters that vanished -- delete the waiver "
            f"comment and this entry: {sorted(gone)}")

    def test_every_discovered_counter_is_accounted_for(self):
        # Inventory + adjudicated waivers must cover the discovered
        # set; the lint sweep itself (JCD014, which also honours the
        # inline waiver comments) must agree there is nothing left.
        findings = [item for item in lint_call_graph(real_tree_graph())
                    if item.code == "JCD014"]
        assert findings == []

    def test_no_stale_inventory_entries(self):
        findings = [item for item in lint_call_graph(real_tree_graph())
                    if item.code == "JCD019"]
        assert findings == []


class TestResetCoversTheInventory:
    def test_reset_rewinds_every_site(self):
        # Advance every inventoried counter, reset, and check each one
        # hands out 1 again.
        for module_name, attr in COUNTER_SITES:
            module = importlib.import_module(module_name)
            counter = getattr(module, attr)
            assert isinstance(counter, type(itertools.count())), (
                f"{module_name}.{attr} is not an itertools.count")
            for _ in range(10):
                next(counter)
        reset_session_state()
        for module_name, attr in COUNTER_SITES:
            module = importlib.import_module(module_name)
            assert next(getattr(module, attr)) == 1, (
                f"reset_session_state left {module_name}.{attr} "
                f"advanced")
        reset_session_state()

    def test_inventory_is_importable_and_unique(self):
        assert len(set(COUNTER_SITES)) == len(COUNTER_SITES)
        for module_name, attr in COUNTER_SITES:
            module = importlib.import_module(module_name)
            assert hasattr(module, attr), (
                f"{module_name}.{attr} missing at runtime")
