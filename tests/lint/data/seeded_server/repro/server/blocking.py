"""Seeded JCD015 defects: blocking calls inside ``async def``.

This file lives under a miniature ``repro/server`` package tree so the
dotted module name the analyzers derive (``repro.server.blocking``)
falls inside the rule's scope.  It is never imported or executed.
"""

import socket
import time


class SeededAsyncHandler:
    async def serve_frame(self, frame, future, lock):
        lock.acquire()
        time.sleep(0.05)
        raw = socket.socket()
        raw.connect(("localhost", 9))
        payload = raw.recv(4096)
        reply = future.result()
        with open("/tmp/seeded.log") as handle:
            handle.read()
        return frame, payload, reply

    async def well_behaved(self, loop, executor, frame):
        # Awaited executor hops must NOT be reported.
        return await loop.run_in_executor(executor, len, frame)
