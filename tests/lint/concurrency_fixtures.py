"""Seeded concurrency defects for the JCD014-JCD019 analyzers.

Every construct here violates exactly one contract the concurrency
rules exist to catch; the test suite (and the CI lint job) asserts
that each defect is reported with its code.  Nothing in this module is
ever executed -- the analyzers work on the source alone.

JCD015 (blocking call in ``async def``) is scoped to ``repro.server``
modules and therefore seeded separately, in
``tests/lint/data/seeded_server/repro/server/blocking.py``, whose
package layout gives it the dotted name the rule looks for.
"""

import itertools
import random
import threading
import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor

from repro.server.dispatch import ProcessDispatcher

# JCD019: this inventory entry names an attribute the module does not
# define -- the stale-site defect.
COUNTER_SITES = (
    ("tests.lint.concurrency_fixtures", "_vanished_ids"),
)

# JCD014: a module-level id counter consumed from a dispatch-reachable
# method (SeededFarmServant.begin below) but missing from the
# COUNTER_SITES inventory.
_rogue_ids = itertools.count(1)

# JCD017 target: module-level mutable state written on a dispatch path
# without its lock.
_shared_results = {}
_results_lock = threading.Lock()


class SeededFarmServant:
    """A servant whose REMOTE_METHODS root the dispatch call graph."""

    REMOTE_METHODS = ("begin", "collect", "tidy")

    def begin(self, name):
        token = next(_rogue_ids)
        _shared_results[name] = token
        return f"task{token}"

    def collect(self):
        stamped = [time.time() for tag in {"al", "er", "mr"}]
        random.shuffle(stamped)
        return [id(value) for value in stamped]

    def tidy(self):
        with _results_lock:
            # Guarded: this mutation must NOT be reported.
            _shared_results.clear()
        return True


def _noop():
    return None


def _bad_initializer():
    """JCD016: a worker initializer that starts threads."""
    watchdog = threading.Thread(target=_noop)
    watchdog.start()
    return watchdog


def _boot_process_tier(session_factory, workers):
    """JCD016: an executor created before the fork point."""
    pool = ThreadPoolExecutor(max_workers=workers)
    dispatcher = ProcessDispatcher(session_factory, workers)
    return pool, dispatcher


def _spawn_workers():
    return ProcessPoolExecutor(max_workers=1,
                               initializer=_bad_initializer)
