"""The shared call-graph index behind the concurrency analyzers."""

import os

import repro
from repro.lint.callgraph import CallGraph, module_name_for

SERVER = """
class AsyncRMIServer:
    def _handle(self, frame):
        return dispatch_frame(frame)

    def _spawn(self, pool):
        pool.submit(worker_entry, 1)
"""

CORE = """
import itertools

_call_ids = itertools.count(1)
_quiet_ids = itertools.count(1)
_hits = 0


def dispatch_frame(frame):
    return next(_call_ids)


def worker_entry(slot):
    global _hits
    _hits += 1
    return slot


def never_called():
    return next(_quiet_ids)
"""


def build():
    return CallGraph.from_sources({
        "repro.server.fake": SERVER,
        "repro.core.fake": CORE,
    })


class TestModuleNames:
    def test_package_chain_is_walked(self):
        package_dir = os.path.dirname(repro.__file__)
        path = os.path.join(package_dir, "rmi", "protocol.py")
        assert module_name_for(path) == "repro.rmi.protocol"

    def test_init_file_names_the_package(self):
        package_dir = os.path.dirname(repro.__file__)
        path = os.path.join(package_dir, "rmi", "__init__.py")
        assert module_name_for(path) == "repro.rmi"

    def test_loose_file_keeps_its_stem(self, tmp_path):
        loose = tmp_path / "standalone.py"
        loose.write_text("x = 1\n")
        assert module_name_for(str(loose)) == "standalone"


class TestCounterDiscovery:
    def test_count_and_incremented_int_globals_found(self):
        graph = build()
        sites = graph.discovered_sites()
        assert ("repro.core.fake", "_call_ids") in sites
        assert ("repro.core.fake", "_quiet_ids") in sites
        assert ("repro.core.fake", "_hits") in sites

    def test_plain_int_global_is_not_a_counter(self):
        graph = CallGraph.from_sources({
            "m": "LIMIT = 5\n\ndef f():\n    return LIMIT\n"})
        assert graph.discovered_sites() == frozenset()

    def test_annotated_count_assignment_found(self):
        graph = CallGraph.from_sources({
            "m": ("import itertools\n"
                  "_ids: 'itertools.count' = itertools.count(1)\n")})
        assert ("m", "_ids") in graph.discovered_sites()


class TestReachability:
    def test_dispatch_class_methods_are_entry_points(self):
        graph = build()
        entries = set(graph.entry_points())
        assert "repro.server.fake:AsyncRMIServer._handle" in entries
        assert "repro.server.fake:AsyncRMIServer._spawn" in entries

    def test_direct_call_edge(self):
        graph = build()
        assert "repro.core.fake:dispatch_frame" in graph.reachable()

    def test_deferred_submit_edge(self):
        graph = build()
        assert "repro.core.fake:worker_entry" in graph.reachable()

    def test_uncalled_function_is_unreachable(self):
        graph = build()
        assert "repro.core.fake:never_called" not in graph.reachable()

    def test_counter_reachability_split(self):
        graph = build()
        by_attr = {c.attr: c for c in graph.counters()}
        assert graph.is_dispatch_reachable(by_attr["_call_ids"])
        assert graph.is_dispatch_reachable(by_attr["_hits"])
        assert not graph.is_dispatch_reachable(by_attr["_quiet_ids"])


class TestServantEntryPoints:
    def test_remote_methods_root_the_graph(self):
        graph = CallGraph.from_sources({"m": """
class Worker:
    REMOTE_METHODS = ("run",)

    def run(self):
        return helper()

    def local_only(self):
        return lonely()


def helper():
    return 1


def lonely():
    return 2
"""})
        assert "m:Worker.run" in graph.entry_points()
        assert "m:Worker.local_only" not in graph.entry_points()
        assert "m:helper" in graph.reachable()
        assert "m:lonely" not in graph.reachable()

    def test_constructor_call_reaches_init(self):
        graph = CallGraph.from_sources({"m": """
class AsyncRMIServer:
    def boot(self):
        return Helper()


class Helper:
    def __init__(self):
        seed_state()


def seed_state():
    return None
"""})
        assert "m:Helper.__init__" in graph.reachable()
        assert "m:seed_state" in graph.reachable()

    def test_initializer_keyword_is_a_deferred_edge(self):
        graph = CallGraph.from_sources({"m": """
class AsyncRMIServer:
    def boot(self, pool_cls):
        return pool_cls(max_workers=1, initializer=warm_worker)


def warm_worker():
    return None
"""})
        assert "m:warm_worker" in graph.reachable()
