"""Seeded-defect servants for the static code analyzers.

Every class here violates exactly the contracts the ``repro lint``
servant rules exist to catch; the test suite (and the CI lint job)
asserts that each defect is reported with its JCD0xx code.  None of
this code is ever executed -- the analyzers work on the source alone.
"""

from repro.faults.detection import DetectionTable
from repro.gates.netlist import Netlist


class ImpureCatalogServant:
    """JCD010: ``describe`` is pure by the stock whitelist but writes
    servant state, so a cached reply would silently go stale."""

    REMOTE_METHODS = ("describe", "reset_stats")

    def __init__(self):
        self.calls = 0
        self.log = []

    def describe(self, component: str) -> dict:
        self.calls += 1
        self.log.append(component)
        return {"component": component}

    def reset_stats(self) -> None:
        self.calls = 0


class LeakyNetlistServant:
    """JCD012: returns design structure instead of port-local values."""

    REMOTE_METHODS = ("internals", "gate_dump", "summary")

    def __init__(self, netlist: Netlist):
        self.netlist = netlist

    def internals(self):
        return self.netlist

    def gate_dump(self):
        return list(self.netlist.gates)

    def summary(self) -> dict:
        # Data-sheet scalars only: must NOT be flagged.
        return {"name": self.netlist.name,
                "gates": self.netlist.gate_count()}


class UnmarshallableServant:
    """JCD011: promises to return types the marshaller rejects."""

    REMOTE_METHODS = ("fetch_netlist", "fetch_table")

    def __init__(self, netlist: Netlist):
        self._impl = netlist

    def fetch_netlist(self) -> Netlist:
        return Netlist("copy")

    def fetch_table(self) -> DetectionTable:
        # A registered value type: must NOT be flagged.
        return DetectionTable("x", (), (), {})


class StaleWhitelistServant:
    """JCD013: PURE_METHODS names methods that do not exist or are
    not remote."""

    REMOTE_METHODS = ("describe",)
    PURE_METHODS = ("describe", "vanished", "local_only")

    def describe(self) -> dict:
        return {}

    def local_only(self) -> int:
        return 1


class WaivedCounterServant:
    """A JCD010 violation waived inline: must NOT be flagged."""

    REMOTE_METHODS = ("describe",)

    def __init__(self):
        self.hits = 0

    def describe(self) -> dict:
        self.hits += 1  # lint: allow(JCD010)
        return {"hits": "counted"}
