"""Netlist lint: undriven nets, loops, phantom fault sites."""

import os

from repro.core.signal import Logic
from repro.faults.faultlist import FaultList, build_fault_list
from repro.faults.model import StuckAtFault
from repro.gates.io import c17, read_bench
from repro.gates.netlist import Netlist
from repro.lint import lint_fault_list, lint_netlist
from repro.lint.runner import run_lint

DATA = os.path.join(os.path.dirname(__file__), "data")


def load_fixture(name):
    with open(os.path.join(DATA, name)) as handle:
        return read_bench(handle.read(), name=name, validate=False)


def codes(findings):
    return sorted(f.code for f in findings)


class TestCleanNetlists:
    def test_c17_is_clean(self):
        assert lint_netlist(c17()) == []

    def test_valid_fault_list_is_clean(self):
        netlist = c17()
        assert lint_fault_list(build_fault_list(netlist), netlist) == []


class TestCombinationalLoop:
    def test_jcd006_names_the_cycle(self):
        findings = lint_netlist(load_fixture("loop.bench"))
        [loop] = [f for f in findings if f.code == "JCD006"]
        assert "q -> " in loop.message and "-> q" in loop.message

    def test_loop_built_in_memory(self):
        netlist = Netlist("ring")
        netlist.add_input("a")
        netlist.add_gate("AND", ["a", "r"], "q")
        netlist.add_gate("BUF", ["q"], "r")
        netlist.add_output("q")
        assert "JCD006" in codes(lint_netlist(netlist))


class TestUndrivenNets:
    def test_jcd007_reports_every_site(self):
        findings = lint_netlist(load_fixture("undriven.bench"))
        undriven = [f for f in findings if f.code == "JCD007"]
        messages = " | ".join(f.message for f in undriven)
        assert "ghost" in messages          # phantom gate input
        assert "'z' is undriven" in messages  # phantom primary output
        assert len(undriven) == 2

    def test_run_lint_dispatches_netlists(self):
        findings = run_lint(load_fixture("undriven.bench"))
        assert "JCD007" in codes(findings)


class TestFaultSites:
    def test_jcd008_unknown_net(self):
        netlist = c17()
        faults = FaultList("c17", {
            "bogus": StuckAtFault("no_such_net", Logic.ZERO)})
        findings = lint_fault_list(faults, netlist)
        assert codes(findings) == ["JCD008"]
        assert "no_such_net" in findings[0].message

    def test_jcd008_unknown_gate(self):
        netlist = c17()
        faults = FaultList("c17", {
            "bogus": StuckAtFault("1", Logic.ONE, gate_name="g99",
                                  pin=0)})
        findings = lint_fault_list(faults, netlist)
        assert codes(findings) == ["JCD008"]
        assert "g99" in findings[0].message

    def test_jcd008_pin_out_of_range(self):
        netlist = c17()
        gate = netlist.gates[0]
        faults = FaultList("c17", {
            "bogus": StuckAtFault(gate.inputs[0], Logic.ONE,
                                  gate_name=gate.name, pin=7)})
        findings = lint_fault_list(faults, netlist)
        assert codes(findings) == ["JCD008"]
        assert "pin 7" in findings[0].message

    def test_jcd008_pin_reads_other_net(self):
        netlist = c17()
        gate = netlist.gates[0]
        other = next(n for n in netlist.nets()
                     if n not in gate.inputs)
        faults = FaultList("c17", {
            "bogus": StuckAtFault(other, Logic.ONE,
                                  gate_name=gate.name, pin=0)})
        findings = lint_fault_list(faults, netlist)
        assert codes(findings) == ["JCD008"]

    def test_run_lint_accepts_fault_list(self):
        netlist = c17()
        faults = FaultList("c17", {
            "bogus": StuckAtFault("nowhere", Logic.ZERO)})
        assert "JCD008" in codes(run_lint(netlist, fault_list=faults))


class TestLevelizeDiagnostic:
    """Satellite: the levelize error names the actual cycle."""

    def test_loop_error_names_cycle(self):
        import pytest

        from repro.core.errors import DesignError

        netlist = Netlist("ring")
        netlist.add_input("a")
        netlist.add_gate("AND", ["a", "r"], "q")
        netlist.add_gate("BUF", ["q"], "r")
        netlist.add_output("q")
        with pytest.raises(DesignError, match="combinational "
                                              "loop: .*q.*->.*q"):
            netlist.levelize()

    def test_finder_returns_none_on_clean(self):
        assert c17().find_combinational_cycle() is None

    def test_finder_cycle_is_closed_and_alternating(self):
        netlist = Netlist("ring")
        netlist.add_input("a")
        netlist.add_gate("AND", ["a", "r"], "q")
        netlist.add_gate("BUF", ["q"], "r")
        netlist.add_output("q")
        cycle = netlist.find_combinational_cycle()
        assert cycle[0] == cycle[-1]
        gates = {g.name for g in netlist.gates}
        kinds = ["gate" if item in gates else "net" for item in cycle]
        assert all(a != b for a, b in zip(kinds, kinds[1:]))
