"""Differential tests: wire optimizations never change results.

Every seeded workload runs under the four wire configurations of
:data:`harness.WIRE_MODES`; the serialized functional artifacts must be
byte-identical while the true round-trip counters drop.  This is the
correctness proof for the batching + caching invocation layer.
"""

import pytest

from .harness import (WIRE_MODES, assert_identical, fault_sim_workload,
                      figure2_workload, run_all_modes)


class TestFigure2Differential:
    """The paper's ER/MR scenarios under every wire configuration."""

    def test_er_blocking_identical(self):
        runs = run_all_modes(figure2_workload(
            "ER", patterns=40, buffer_size=5, seed=1))
        assert_identical(runs)
        assert runs["plain"].round_trips == runs["plain"].logical_calls
        for mode in WIRE_MODES:
            assert runs[mode].round_trips <= runs["plain"].round_trips

    def test_er_nonblocking_chatty_batches_5x(self):
        """The chatty workload: per-pattern oneway pushes (buffer of 1).

        This is the acceptance benchmark -- batching must save at least
        5x the transport round trips while producing byte-identical
        traces and powers.
        """
        runs = run_all_modes(figure2_workload(
            "ER", patterns=120, buffer_size=1, nonblocking=True, seed=2))
        assert_identical(runs)
        plain = runs["plain"].round_trips
        combined = runs["batched+cached"].round_trips
        assert combined > 0
        assert plain >= 5 * combined, (
            f"expected a >=5x round-trip reduction, got "
            f"{plain} -> {combined}")
        assert runs["batched"].round_trips * 5 <= plain
        # The logical call count is an invariant of the workload.
        counts = {run.logical_calls for run in runs.values()}
        assert len(counts) == 1

    def test_mr_identical(self):
        runs = run_all_modes(figure2_workload("MR", patterns=30, seed=3))
        assert_identical(runs)
        for mode in WIRE_MODES:
            assert runs[mode].round_trips <= runs["plain"].round_trips

    def test_mr_narrow_width_caching_saves(self):
        """4-bit operands over 60 patterns force repeated evaluate()
        stimuli, so the response cache must shed round trips."""
        runs = run_all_modes(figure2_workload(
            "MR", width=4, patterns=60, seed=4))
        assert_identical(runs)
        assert runs["cached"].round_trips < runs["plain"].round_trips
        assert runs["batched+cached"].round_trips \
            <= runs["cached"].round_trips


class TestFaultSimDifferential:
    """Virtual fault simulation over RMI, three seeded netlists."""

    @pytest.mark.parametrize("seed", [11, 23, 37])
    def test_seeded_netlists_identical(self, seed):
        runs = run_all_modes(fault_sim_workload(seed))
        assert_identical(runs)
        # Two identical pattern runs: the response cache answers the
        # second run's detection-table fetches without the wire.
        assert runs["cached"].round_trips < runs["plain"].round_trips
        assert runs["batched+cached"].round_trips \
            <= runs["cached"].round_trips
        # Coverage is real work, not a vacuous pass.
        assert runs["plain"].artifacts["runs"][0]["coverage"] > 0

    def test_repeat_runs_agree_within_mode(self):
        runs = run_all_modes(fault_sim_workload(23))
        for run in runs.values():
            first, second = run.artifacts["runs"]
            assert first == second
