"""Differential gate: the compiled PPSFP engine vs the event path.

The acceptance bar for ``repro.compiled`` is *byte-identical*
``FaultSimReport`` values -- detected map (values and insertion
order), per-pattern sets, and coverage history -- between
``--engine event`` and ``--engine compiled`` on every bench the
campaign tooling ships: the paper's Figure 4 half-adder, the chatty
random netlist, and the embedded (virtual IP) bench.  The matrix
covers the serial runner, the sharded multiprocessing runner with
four workers, and the remote fault farm.
"""

import contextlib
import random

import pytest

from repro.bench.faultbench import build_embedded, chatty_fault_bench
from repro.compiled import CompiledFaultSimulator
from repro.core.signal import Logic
from repro.faults.faultlist import build_fault_list
from repro.faults.serial import SerialFaultSimulator
from repro.gates.generators import ip1_block
from repro.parallel import diff_reports, parallel_fault_simulate
from repro.parallel.remote import (register_fault_farm,
                                   remote_fault_simulate, resolve_bench)
from repro.rmi.server import JavaCADServer


@contextlib.contextmanager
def fault_farm(count):
    """Spin up ``count`` TCP farm workers; yields (endpoints, servants)."""
    servers, endpoints, servants = [], [], []
    try:
        for index in range(count):
            server = JavaCADServer(f"farm{index}")
            servants.append(register_fault_farm(server, isolate=False))
            host, port = server.serve_tcp("127.0.0.1", 0)
            servers.append(server)
            endpoints.append(f"{host}:{port}")
        yield endpoints, servants
    finally:
        for server in servers:
            server.stop_tcp()


def random_patterns(netlist, count, seed=0):
    rng = random.Random(seed)
    return [{net: Logic(rng.getrandbits(1)) for net in netlist.inputs}
            for _ in range(count)]


def assert_reports_identical(event, compiled):
    """Field-by-field identity, including dict insertion order."""
    assert diff_reports(event, compiled) == []
    assert compiled.total_faults == event.total_faults
    assert compiled.detected == event.detected
    assert list(compiled.detected) == list(event.detected)
    assert compiled.per_pattern == event.per_pattern
    assert compiled.coverage_history() == event.coverage_history()


# Corpus benches ride with a fault-universe cap: the serial event
# baseline is the slow side of the diff, and a subset keeps the suite
# quick while still exercising four-digit-gate kernels.  Sequential
# entries diff their combinational core (the full-scan view).
CORPUS_CAMPAIGNS = {
    "alu8": None, "ecc32": 200, "alu32": 200, "mult8": 200,
    "mult16": 96, "salu8": 200,
}


def campaign(bench):
    if bench == "figure4":
        netlist = resolve_bench("figure4")
        patterns = random_patterns(netlist, 48)
    elif bench == "chatty":
        netlist = chatty_fault_bench()
        patterns = random_patterns(netlist, 24)
    elif bench in CORPUS_CAMPAIGNS:
        from repro.gates.corpus import load_bench
        from repro.gates.io import SequentialBench

        loaded = load_bench(bench)
        netlist = (loaded.core if isinstance(loaded, SequentialBench)
                   else loaded)
        fault_list = build_fault_list(netlist)
        cap = CORPUS_CAMPAIGNS[bench]
        if cap is not None:
            fault_list = fault_list.subset(fault_list.names()[:cap])
        return netlist, fault_list, random_patterns(netlist, 16)
    else:  # embedded
        experiment = build_embedded(ip1_block())
        netlist = experiment.serial.netlist
        logic = experiment.patterns_as_logic(
            experiment.random_patterns(24))
        return netlist, experiment.serial.fault_list, logic
    return netlist, build_fault_list(netlist), patterns


class TestSerialParity:
    @pytest.mark.parametrize("bench", ["figure4", "chatty", "embedded"])
    @pytest.mark.parametrize("drop", [True, False])
    def test_report_identical(self, bench, drop):
        netlist, fault_list, patterns = campaign(bench)
        event = SerialFaultSimulator(netlist, fault_list).run(
            patterns, drop_detected=drop)
        compiled = CompiledFaultSimulator(netlist, fault_list).run(
            patterns, drop_detected=drop)
        assert_reports_identical(event, compiled)

    @pytest.mark.parametrize("bench", sorted(CORPUS_CAMPAIGNS))
    def test_corpus_report_identical(self, bench):
        netlist, fault_list, patterns = campaign(bench)
        event = SerialFaultSimulator(netlist, fault_list).run(patterns)
        compiled = CompiledFaultSimulator(netlist, fault_list).run(
            patterns)
        assert_reports_identical(event, compiled)


class TestParallelParity:
    """Sharded runs merge shard reports, so ``detected`` insertion
    order depends on the shard plan, not the engine; engine parity is
    judged against the *same runner* with ``--engine event``."""

    @pytest.mark.parametrize("bench", ["figure4", "embedded", "alu8",
                                       "mult16"])
    def test_four_workers_identical(self, bench):
        netlist, fault_list, patterns = campaign(bench)
        serial = SerialFaultSimulator(netlist, fault_list).run(patterns)
        event = parallel_fault_simulate(netlist, patterns,
                                        fault_list=fault_list,
                                        workers=4, engine="event")
        compiled = parallel_fault_simulate(netlist, patterns,
                                           fault_list=fault_list,
                                           workers=4, engine="compiled")
        assert_reports_identical(event, compiled)
        assert diff_reports(serial, compiled) == []


class TestRemoteParity:
    def test_farm_shards_run_compiled(self):
        netlist, fault_list, patterns = campaign("figure4")
        serial = SerialFaultSimulator(netlist, fault_list).run(patterns)
        with fault_farm(2) as (endpoints, servants):
            event = remote_fault_simulate("figure4", patterns,
                                          endpoints, engine="event")
            compiled = remote_fault_simulate("figure4", patterns,
                                             endpoints, engine="compiled")
            assert sum(s.shards_served for s in servants) >= 4
        assert_reports_identical(event, compiled)
        assert diff_reports(serial, compiled) == []

    def test_farm_resolves_corpus_bench(self):
        """Workers rebuild corpus benches from the name alone; the
        merged compiled report equals the local serial event run."""
        netlist, fault_list, patterns = campaign("alu8")
        serial = SerialFaultSimulator(netlist, fault_list).run(patterns)
        with fault_farm(2) as (endpoints, _servants):
            compiled = remote_fault_simulate("alu8", patterns,
                                             endpoints,
                                             engine="compiled")
        assert diff_reports(serial, compiled) == []

    def test_sequential_bench_rejected_with_pointer(self):
        from repro.parallel.remote import ParallelExecutionError

        with pytest.raises(ParallelExecutionError,
                           match="read_sequential_bench"):
            resolve_bench("s27")
