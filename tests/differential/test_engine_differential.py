"""Differential gate: the compiled PPSFP engine vs the event path.

The acceptance bar for ``repro.compiled`` is *byte-identical*
``FaultSimReport`` values -- detected map (values and insertion
order), per-pattern sets, and coverage history -- between
``--engine event`` and ``--engine compiled`` on every bench the
campaign tooling ships: the paper's Figure 4 half-adder, the chatty
random netlist, and the embedded (virtual IP) bench.  The matrix
covers the serial runner, the sharded multiprocessing runner with
four workers, and the remote fault farm.
"""

import contextlib
import random

import pytest

from repro.bench.faultbench import build_embedded, chatty_fault_bench
from repro.compiled import CompiledFaultSimulator
from repro.core.signal import Logic
from repro.faults.faultlist import build_fault_list
from repro.faults.serial import SerialFaultSimulator
from repro.gates.generators import ip1_block
from repro.parallel import diff_reports, parallel_fault_simulate
from repro.parallel.remote import (register_fault_farm,
                                   remote_fault_simulate, resolve_bench)
from repro.rmi.server import JavaCADServer


@contextlib.contextmanager
def fault_farm(count):
    """Spin up ``count`` TCP farm workers; yields (endpoints, servants)."""
    servers, endpoints, servants = [], [], []
    try:
        for index in range(count):
            server = JavaCADServer(f"farm{index}")
            servants.append(register_fault_farm(server, isolate=False))
            host, port = server.serve_tcp("127.0.0.1", 0)
            servers.append(server)
            endpoints.append(f"{host}:{port}")
        yield endpoints, servants
    finally:
        for server in servers:
            server.stop_tcp()


def random_patterns(netlist, count, seed=0):
    rng = random.Random(seed)
    return [{net: Logic(rng.getrandbits(1)) for net in netlist.inputs}
            for _ in range(count)]


def assert_reports_identical(event, compiled):
    """Field-by-field identity, including dict insertion order."""
    assert diff_reports(event, compiled) == []
    assert compiled.total_faults == event.total_faults
    assert compiled.detected == event.detected
    assert list(compiled.detected) == list(event.detected)
    assert compiled.per_pattern == event.per_pattern
    assert compiled.coverage_history() == event.coverage_history()


def campaign(bench):
    if bench == "figure4":
        netlist = resolve_bench("figure4")
        patterns = random_patterns(netlist, 48)
    elif bench == "chatty":
        netlist = chatty_fault_bench()
        patterns = random_patterns(netlist, 24)
    else:  # embedded
        experiment = build_embedded(ip1_block())
        netlist = experiment.serial.netlist
        logic = experiment.patterns_as_logic(
            experiment.random_patterns(24))
        return netlist, experiment.serial.fault_list, logic
    return netlist, build_fault_list(netlist), patterns


class TestSerialParity:
    @pytest.mark.parametrize("bench", ["figure4", "chatty", "embedded"])
    @pytest.mark.parametrize("drop", [True, False])
    def test_report_identical(self, bench, drop):
        netlist, fault_list, patterns = campaign(bench)
        event = SerialFaultSimulator(netlist, fault_list).run(
            patterns, drop_detected=drop)
        compiled = CompiledFaultSimulator(netlist, fault_list).run(
            patterns, drop_detected=drop)
        assert_reports_identical(event, compiled)


class TestParallelParity:
    """Sharded runs merge shard reports, so ``detected`` insertion
    order depends on the shard plan, not the engine; engine parity is
    judged against the *same runner* with ``--engine event``."""

    @pytest.mark.parametrize("bench", ["figure4", "embedded"])
    def test_four_workers_identical(self, bench):
        netlist, fault_list, patterns = campaign(bench)
        serial = SerialFaultSimulator(netlist, fault_list).run(patterns)
        event = parallel_fault_simulate(netlist, patterns,
                                        fault_list=fault_list,
                                        workers=4, engine="event")
        compiled = parallel_fault_simulate(netlist, patterns,
                                           fault_list=fault_list,
                                           workers=4, engine="compiled")
        assert_reports_identical(event, compiled)
        assert diff_reports(serial, compiled) == []


class TestRemoteParity:
    def test_farm_shards_run_compiled(self):
        netlist, fault_list, patterns = campaign("figure4")
        serial = SerialFaultSimulator(netlist, fault_list).run(patterns)
        with fault_farm(2) as (endpoints, servants):
            event = remote_fault_simulate("figure4", patterns,
                                          endpoints, engine="event")
            compiled = remote_fault_simulate("figure4", patterns,
                                             endpoints, engine="compiled")
            assert sum(s.shards_served for s in servants) >= 4
        assert_reports_identical(event, compiled)
        assert diff_reports(serial, compiled) == []
