"""Differential testing of the RMI wire layer.

The harness in :mod:`tests.differential.harness` runs identical seeded
workloads under every wire configuration (plain, batched, cached,
batched+cached) and asserts byte-identical functional results while the
round-trip counters drop.
"""
