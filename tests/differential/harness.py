"""Differential harness: one workload, four wire configurations.

Batching and caching are *wire* optimizations: they may change how many
frames cross the transport and what the virtual clock reads, but they
must never change what the simulation computes.  The harness encodes
that contract:

* a **workload** is a callable taking ``(batching, caching)`` and
  returning a :class:`DifferentialRun` whose ``fingerprint`` is a
  deterministic byte serialization of every functional artifact (event
  traces, power lists, fault-coverage results);
* :func:`run_all_modes` executes the workload under the four
  configurations in :data:`WIRE_MODES`;
* :func:`assert_identical` requires the fingerprints to be
  byte-identical, so any observable divergence -- reordered emissions,
  a stale cache hit, a dropped batched call -- fails loudly.

Virtual-clock times are deliberately *excluded* from fingerprints:
fewer round trips legitimately means less virtual wall time.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.bench.faultbench import build_embedded
from repro.bench.scenarios import Figure2Design, shared_provider
from repro.core.controller import SimulationController
from repro.core.wave import WaveformRecorder
from repro.estimation.criteria import ByName
from repro.estimation.parameter import AVERAGE_POWER
from repro.estimation.setup import SetupController
from repro.faults.virtual import TestabilityServant
from repro.gates.generators import random_netlist
from repro.ip.component import ProviderConnection
from repro.net.clock import CostModel, VirtualClock
from repro.net.model import LAN, NetworkModel
from repro.rmi import JavaCADServer, RemoteStub, wrap_transport

WIRE_MODES: Dict[str, Dict[str, bool]] = {
    "plain": {"batching": False, "caching": False},
    "batched": {"batching": True, "caching": False},
    "cached": {"batching": False, "caching": True},
    "batched+cached": {"batching": True, "caching": True},
}
"""The four wire configurations every workload runs under."""


@dataclass
class DifferentialRun:
    """One workload execution under one wire configuration."""

    mode: str
    fingerprint: bytes
    artifacts: Dict[str, Any]
    round_trips: int
    logical_calls: int


def fingerprint_of(artifacts: Dict[str, Any]) -> bytes:
    """Deterministic byte serialization of a functional-artifact dict."""
    return json.dumps(artifacts, sort_keys=True,
                      separators=(",", ":")).encode("utf-8")


def run_all_modes(workload: Callable[[bool, bool], DifferentialRun]
                  ) -> Dict[str, DifferentialRun]:
    """Execute ``workload`` under every configuration in WIRE_MODES."""
    runs: Dict[str, DifferentialRun] = {}
    for mode, flags in WIRE_MODES.items():
        run = workload(flags["batching"], flags["caching"])
        runs[mode] = DifferentialRun(
            mode=mode, fingerprint=run.fingerprint,
            artifacts=run.artifacts, round_trips=run.round_trips,
            logical_calls=run.logical_calls)
    return runs


def assert_identical(runs: Dict[str, DifferentialRun]) -> None:
    """Byte-identical fingerprints across every wire configuration."""
    baseline = runs["plain"]
    for mode, run in runs.items():
        assert run.fingerprint == baseline.fingerprint, (
            f"wire mode {mode!r} diverged from the plain transport:\n"
            f"plain: {baseline.artifacts!r}\n"
            f"{mode}: {run.artifacts!r}")


# ---------------------------------------------------------------------------
# Workload 1: the Figure 2 scenarios (ER / MR), with full event traces
# ---------------------------------------------------------------------------


def run_figure2(mode: str, batching: bool, caching: bool,
                width: int = 8, patterns: int = 40, buffer_size: int = 5,
                nonblocking: bool = False, seed: int = 0,
                network: NetworkModel = LAN) -> DifferentialRun:
    """One Figure 2 scenario run with a waveform recorder attached.

    The fingerprint covers the ordered (connector, value) event trace
    and the collected per-pattern power list -- everything the
    simulation computes, nothing the wire layer may legitimately change.
    """
    cost = CostModel()
    clock = VirtualClock()
    provider = shared_provider(width, True)
    connection = ProviderConnection(provider, network, clock=clock,
                                    cost_model=cost, batching=batching,
                                    caching=caching)
    design = Figure2Design(mode, connection, width=width,
                           patterns=patterns, buffer_size=buffer_size,
                           nonblocking=nonblocking, seed=seed)
    circuit = design.build()
    setup = SetupController(name=f"{mode}-differential-setup")
    setup.set(AVERAGE_POWER, ByName("gate-level-toggle"))
    setup.apply(circuit)

    recorder = WaveformRecorder()
    controller = SimulationController(circuit, setup=setup, clock=clock,
                                      cost_model=cost, name=mode)
    controller.add_observer(recorder)
    controller.start()
    powers = design.mult.collect_power(controller.context)
    connection.flush()
    clock.sync()
    controller.teardown()

    artifacts = {
        "trace": [(change.connector, repr(change.value))
                  for change in recorder.changes],
        "powers": powers,
    }
    return DifferentialRun(
        mode="", fingerprint=fingerprint_of(artifacts),
        artifacts=artifacts, round_trips=connection.round_trips,
        logical_calls=connection.transport.stats.calls)


def figure2_workload(mode: str, **kwargs
                     ) -> Callable[[bool, bool], DifferentialRun]:
    """A Figure 2 scenario as a differential workload."""
    def workload(batching: bool, caching: bool) -> DifferentialRun:
        return run_figure2(mode, batching, caching, **kwargs)
    return workload


# ---------------------------------------------------------------------------
# Workload 2: virtual fault simulation with a remote testability servant
# ---------------------------------------------------------------------------


def run_fault_sim(batching: bool, caching: bool, seed: int = 0,
                  n_inputs: int = 4, n_gates: int = 12, n_outputs: int = 3,
                  patterns: int = 24, repeats: int = 2,
                  network: NetworkModel = LAN) -> DifferentialRun:
    """Virtual fault simulation of a seeded random netlist over RMI.

    The embedded experiment's local servant is re-bound behind a real
    RMI stub over a (possibly wrapped) in-process transport, exactly as
    a protected provider would serve it.  Running the pattern set
    ``repeats`` times gives the response cache cross-run hits: the
    second run re-fetches the same detection tables the first run
    already paid round trips for.
    """
    netlist = random_netlist(n_inputs, n_gates, n_outputs, seed=seed,
                             name=f"diff-{seed}")
    experiment = build_embedded(netlist, block_name=f"IP{seed}")
    servant = experiment.virtual.ip_blocks[0].stub
    assert isinstance(servant, TestabilityServant)

    server = JavaCADServer("testability.provider")
    server.bind("testability", servant, TestabilityServant.REMOTE_METHODS)
    base = server.connect(network)
    transport = wrap_transport(base, batching=batching, caching=caching)
    experiment.virtual.ip_blocks[0].stub = RemoteStub(
        transport, "testability", TestabilityServant.REMOTE_METHODS)

    pattern_set = experiment.random_patterns(patterns, seed=seed)
    artifacts: Dict[str, Any] = {"runs": []}
    for _ in range(repeats):
        report = experiment.virtual.run(pattern_set)
        artifacts["runs"].append({
            "detected": dict(sorted(report.detected.items())),
            "coverage": report.coverage,
            "history": report.coverage_history(),
        })
    transport.flush()
    return DifferentialRun(
        mode="", fingerprint=fingerprint_of(artifacts),
        artifacts=artifacts, round_trips=base.stats.calls,
        logical_calls=transport.stats.calls)


def fault_sim_workload(seed: int, **kwargs
                       ) -> Callable[[bool, bool], DifferentialRun]:
    """A seeded virtual-fault-simulation differential workload."""
    def workload(batching: bool, caching: bool) -> DifferentialRun:
        return run_fault_sim(batching, caching, seed=seed, **kwargs)
    return workload
