"""Telemetry on/off parity for the batched + cached wire.

Observability must be free of observable effect: running the same
batched + cached workload with telemetry enabled and disabled must
produce byte-identical functional results and identical round-trip
counts, and the ``rmi.batch.*`` / ``rmi.cache.*`` metric families must
exist exactly when telemetry is enabled.
"""

import pytest

from repro.telemetry import TELEMETRY, telemetry_session

from .harness import fault_sim_workload, figure2_workload


@pytest.fixture(autouse=True)
def _clean_telemetry():
    TELEMETRY.disable()
    TELEMETRY.reset()
    yield
    TELEMETRY.disable()
    TELEMETRY.reset()


WORKLOADS = {
    "er-chatty": figure2_workload("ER", patterns=30, buffer_size=1,
                                  nonblocking=True, seed=5),
    "fault-sim": fault_sim_workload(23),
}


class TestParity:
    @pytest.mark.parametrize("name", sorted(WORKLOADS))
    def test_results_identical_with_and_without_telemetry(self, name):
        workload = WORKLOADS[name]
        off = workload(True, True)
        assert TELEMETRY.metrics.names() == ()
        with telemetry_session():
            on = workload(True, True)
        assert on.fingerprint == off.fingerprint
        assert on.round_trips == off.round_trips
        assert on.logical_calls == off.logical_calls

    def test_wire_metrics_only_when_enabled(self):
        workload = WORKLOADS["er-chatty"]
        workload(True, True)
        assert TELEMETRY.metrics.names() == ()
        with telemetry_session():
            workload(True, True)
            names = TELEMETRY.metrics.names()
        batch_families = [n for n in names if n.startswith("rmi.batch.")]
        cache_families = [n for n in names if n.startswith("rmi.cache.")]
        assert "rmi.batch.flushes" in batch_families
        assert "rmi.batch.saved_round_trips" in batch_families
        assert "rmi.batch.calls" in batch_families
        assert "rmi.cache.hits" in cache_families or \
            "rmi.cache.misses" in cache_families

    def test_saved_round_trip_counters_are_nonzero(self):
        with telemetry_session():
            WORKLOADS["er-chatty"](True, True)
            saved = TELEMETRY.metrics.counter(
                "rmi.batch.saved_round_trips").value
        assert saved > 0
