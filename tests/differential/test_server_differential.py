"""Differential gate: the async front end changes nothing functional.

Every serving stack -- in-process serial, the legacy blocking TCP
door, and the async server in its plain / TLS / TLS+auth
configurations -- must produce byte-identical fault reports for the
same campaign.  The fingerprints reuse the wire-differential harness's
canonical JSON serialization, so "identical" means identical bytes,
not approximately equal coverage.
"""

import os
import random
import threading

import pytest

from repro.core.signal import Logic
from repro.faults.faultlist import build_fault_list
from repro.faults.serial import SerialFaultSimulator
from repro.parallel.remote import (register_fault_farm,
                                   remote_fault_simulate, report_to_wire,
                                   resolve_bench)
from repro.rmi import JavaCADServer, server_ssl_context
from repro.server import AsyncRMIServer
from repro.server.farm import fault_farm_session_factory

from .harness import fingerprint_of

TLS_DIR = os.path.join(os.path.dirname(__file__), os.pardir, "data",
                       "tls")
CERT = os.path.join(TLS_DIR, "server.pem")
KEY = os.path.join(TLS_DIR, "server.key")


def campaign(bench="figure4", patterns=48, seed=0):
    netlist = resolve_bench(bench)
    rng = random.Random(seed)
    pattern_set = [{net: Logic(rng.getrandbits(1))
                    for net in netlist.inputs}
                   for _ in range(patterns)]
    return netlist, pattern_set


def report_fingerprint(report):
    """Canonical bytes of a report's functional content."""
    wire = report_to_wire(report)
    return fingerprint_of({
        "total_faults": wire["total_faults"],
        "detected": wire["detected"],
        "per_pattern": [sorted(newly) for newly in wire["per_pattern"]],
    })


def serial_fingerprint(bench, pattern_set):
    netlist = resolve_bench(bench)
    fault_list = build_fault_list(netlist)
    report = SerialFaultSimulator(netlist, fault_list).run(pattern_set)
    return report_fingerprint(report)


def farmed_fingerprint(endpoint, bench, pattern_set, **client):
    report = remote_fault_simulate(bench, pattern_set, [endpoint],
                                   workers=3, **client)
    return report_fingerprint(report)


class TestServingStacksAreByteIdentical:
    def test_async_stacks_match_blocking_and_serial(self):
        bench = "figure4"
        _netlist, pattern_set = campaign(bench)
        baseline = serial_fingerprint(bench, pattern_set)
        fingerprints = {"serial": baseline}

        blocking = JavaCADServer("differential.blocking")
        register_fault_farm(blocking)
        host, port = blocking.serve_tcp("127.0.0.1", 0)
        try:
            fingerprints["blocking"] = farmed_fingerprint(
                f"{host}:{port}", bench, pattern_set)
        finally:
            blocking.stop_tcp()

        stacks = {
            "async-plain": (dict(), dict()),
            "async-tls": (
                dict(ssl_context=server_ssl_context(CERT, KEY)),
                dict(tls_ca=CERT)),
            "async-tls-auth": (
                dict(ssl_context=server_ssl_context(CERT, KEY),
                     auth_token="differential"),
                dict(tls_ca=CERT, token="differential")),
        }
        for name, (server_options, client_options) in stacks.items():
            server = AsyncRMIServer(
                session_factory=fault_farm_session_factory(),
                **server_options)
            host, port = server.start()
            try:
                fingerprints[name] = farmed_fingerprint(
                    f"{host}:{port}", bench, pattern_set,
                    **client_options)
            finally:
                server.stop()

        for name, fingerprint in fingerprints.items():
            assert fingerprint == baseline, (
                f"stack {name!r} diverged from the serial baseline")

    def test_repeated_async_runs_are_byte_identical(self):
        bench = "c17"
        _netlist, pattern_set = campaign(bench, patterns=24)
        server = AsyncRMIServer(
            session_factory=fault_farm_session_factory())
        host, port = server.start()
        try:
            first = farmed_fingerprint(f"{host}:{port}", bench,
                                       pattern_set)
            second = farmed_fingerprint(f"{host}:{port}", bench,
                                        pattern_set)
        finally:
            server.stop()
        assert first == second == serial_fingerprint(bench, pattern_set)


class TestConcurrentSessions:
    def test_two_authenticated_tenants_match_fresh_process_serial(self):
        # Two different campaigns run *concurrently* through one
        # authenticated server; per-session id namespaces mean each
        # result must equal its own fresh-process serial baseline.
        campaigns = {
            "tenant-a": ("figure4", campaign("figure4", seed=1)[1]),
            "tenant-b": ("c17", campaign("c17", seed=2)[1]),
        }
        baselines = {name: serial_fingerprint(bench, pattern_set)
                     for name, (bench, pattern_set) in campaigns.items()}
        server = AsyncRMIServer(
            session_factory=fault_farm_session_factory(),
            auth_token="tenant")
        host, port = server.start()
        results = {}
        failures = []
        barrier = threading.Barrier(len(campaigns))

        def tenant(name, bench, pattern_set):
            try:
                barrier.wait(timeout=5)
                results[name] = farmed_fingerprint(
                    f"{host}:{port}", bench, pattern_set,
                    token="tenant")
            except Exception as exc:  # pragma: no cover - diagnostic
                failures.append((name, exc))

        threads = [threading.Thread(target=tenant,
                                    args=(name, bench, pattern_set))
                   for name, (bench, pattern_set) in campaigns.items()]
        try:
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=60)
        finally:
            server.stop()
        assert not failures
        assert results == baselines
        assert server.stats.sessions_started == 2
        assert server.stats.auth_failures == 0
        assert server.stats.connections_peak == 2


class TestDispatchTiers:
    """Every dispatch tier is byte-identical to fresh-process serial.

    The tiers change *where* a session's dispatches run (behind the
    global gate, on a pinned per-session thread, in a sticky forked
    worker) -- never *what* they compute.  Each tier's farmed report
    must fingerprint identically to a serial run in a fresh process,
    and two concurrent tenants under the concurrent tiers must each
    match their own fresh-process baselines.
    """

    @pytest.mark.parametrize("tier", ["gate", "affinity", "process"])
    def test_tier_matches_fresh_process_serial(self, tier):
        bench = "figure4"
        _netlist, pattern_set = campaign(bench)
        baseline = serial_fingerprint(bench, pattern_set)
        server = AsyncRMIServer(
            session_factory=fault_farm_session_factory(),
            dispatch=tier)
        host, port = server.start()
        try:
            fingerprint = farmed_fingerprint(f"{host}:{port}", bench,
                                             pattern_set)
        finally:
            server.stop()
        assert fingerprint == baseline, (
            f"dispatch tier {tier!r} diverged from the serial baseline")

    @pytest.mark.parametrize("tier", ["affinity", "process"])
    def test_concurrent_tenants_match_their_baselines(self, tier):
        campaigns = {
            "tenant-a": ("figure4", campaign("figure4", seed=3)[1]),
            "tenant-b": ("c17", campaign("c17", seed=4)[1]),
        }
        baselines = {name: serial_fingerprint(bench, pattern_set)
                     for name, (bench, pattern_set) in campaigns.items()}
        server = AsyncRMIServer(
            session_factory=fault_farm_session_factory(),
            dispatch=tier)
        host, port = server.start()
        results = {}
        failures = []
        barrier = threading.Barrier(len(campaigns))

        def tenant(name, bench, pattern_set):
            try:
                barrier.wait(timeout=5)
                results[name] = farmed_fingerprint(
                    f"{host}:{port}", bench, pattern_set)
            except Exception as exc:  # pragma: no cover - diagnostic
                failures.append((name, exc))

        threads = [threading.Thread(target=tenant,
                                    args=(name, bench, pattern_set))
                   for name, (bench, pattern_set) in campaigns.items()]
        try:
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=120)
        finally:
            server.stop()
        assert not failures
        assert results == baselines
