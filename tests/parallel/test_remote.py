"""Remote fault farm: byte-identical merges, retry, poison shards."""

import contextlib
import random

import pytest

from repro.core.errors import ParallelExecutionError
from repro.core.signal import Logic
from repro.faults.faultlist import build_fault_list
from repro.faults.serial import FaultSimReport, SerialFaultSimulator
from repro.parallel import diff_reports
from repro.parallel.remote import (FaultFarmServant, RemoteShard,
                                   RemoteWorkerPool, parse_endpoint,
                                   register_fault_farm,
                                   remote_fault_simulate, report_from_wire,
                                   report_to_wire, resolve_bench)
from repro.rmi.marshal import marshal, unmarshal
from repro.rmi.server import JavaCADServer
from repro.telemetry import TELEMETRY


@contextlib.contextmanager
def fault_farm(count, servant_factory=None):
    """Spin up ``count`` TCP farm workers; yields (endpoints, servants)."""
    servers = []
    endpoints = []
    servants = []
    try:
        for index in range(count):
            server = JavaCADServer(f"farm{index}")
            if servant_factory is not None:
                servant = servant_factory(server)
                server.rebind("faultfarm", servant,
                              FaultFarmServant.REMOTE_METHODS)
            else:
                servant = register_fault_farm(server, isolate=False)
            host, port = server.serve_tcp("127.0.0.1", 0)
            servers.append(server)
            servants.append(servant)
            endpoints.append(f"{host}:{port}")
        yield endpoints, servants
    finally:
        for server in servers:
            server.stop_tcp()


def figure4_campaign(patterns=48, seed=0):
    netlist = resolve_bench("figure4")
    fault_list = build_fault_list(netlist)
    rng = random.Random(seed)
    pattern_set = [{net: Logic(rng.getrandbits(1))
                    for net in netlist.inputs}
                   for _ in range(patterns)]
    return netlist, fault_list, pattern_set


class TestEndpointParsing:
    def test_host_port_string(self):
        assert parse_endpoint("127.0.0.1:9000") == ("127.0.0.1", 9000)

    def test_tuple_passes_through(self):
        assert parse_endpoint(("farm.example", 80)) == ("farm.example", 80)

    def test_missing_port_rejected(self):
        with pytest.raises(ParallelExecutionError):
            parse_endpoint("just-a-host")

    def test_non_numeric_port_rejected(self):
        with pytest.raises(ParallelExecutionError):
            parse_endpoint("host:http")

    def test_empty_pool_rejected(self):
        with pytest.raises(ParallelExecutionError):
            RemoteWorkerPool([])


class TestReportWireForm:
    def test_round_trip_through_marshaller(self):
        report = FaultSimReport(total_faults=4)
        report.detected.update({"a sa0": 0, "b sa1": 2})
        report.per_pattern.extend([{"a sa0"}, set(), {"b sa1"}])
        wire = unmarshal(marshal(report_to_wire(report)))
        rebuilt = report_from_wire(wire)
        assert diff_reports(rebuilt, report) == []
        # Marshal decodes sets as frozensets; the rebuilt report must
        # carry plain sets like every locally produced report.
        assert all(type(newly) is set for newly in rebuilt.per_pattern)


class TestRemoteFarm:
    def test_two_endpoints_match_serial(self):
        netlist, fault_list, patterns = figure4_campaign()
        serial = SerialFaultSimulator(netlist, fault_list).run(patterns)
        with fault_farm(2) as (endpoints, servants):
            remote = remote_fault_simulate("figure4", patterns, endpoints)
            assert diff_reports(remote, serial) == []
            # Every shard was served remotely, none fell back locally.
            assert sum(s.shards_served for s in servants) >= 2

    def test_single_endpoint_matches_serial(self):
        netlist, fault_list, patterns = figure4_campaign(patterns=16)
        serial = SerialFaultSimulator(netlist, fault_list).run(patterns)
        with fault_farm(1) as (endpoints, _):
            remote = remote_fault_simulate("figure4", patterns, endpoints)
        assert diff_reports(remote, serial) == []

    def test_workers_scales_shard_count(self):
        netlist, fault_list, patterns = figure4_campaign(patterns=8)
        serial = SerialFaultSimulator(netlist, fault_list).run(patterns)
        with fault_farm(1) as (endpoints, servants):
            remote = remote_fault_simulate("figure4", patterns, endpoints,
                                           workers=4)
            assert servants[0].shards_served > 4
        assert diff_reports(remote, serial) == []

    def test_shards_travel_as_batch_frames(self):
        _, fault_list, patterns = figure4_campaign(patterns=8)
        with fault_farm(1) as (endpoints, _):
            pool = RemoteWorkerPool(endpoints)
            shard = RemoteShard("figure4", "equivalence",
                                fault_list.names(), tuple(patterns))
            TELEMETRY.reset()
            TELEMETRY.enable()
            try:
                pool.map([shard])
                snapshot = TELEMETRY.metrics.snapshot()
            finally:
                TELEMETRY.disable()
                TELEMETRY.reset()
        # begin_shard + add_patterns + collect_report coalesced into one
        # frame: round trips on the wire < logical calls issued.
        assert snapshot["parallel.remote.saved_round_trips"]["value"] > 0
        assert snapshot["parallel.remote.shards"]["value"] == 1
        assert snapshot["parallel.remote.endpoint_failures"]["value"] == 0

    def test_outcomes_in_submission_order(self):
        _, fault_list, patterns = figure4_campaign(patterns=8)
        names = fault_list.names()
        with fault_farm(2) as (endpoints, _):
            pool = RemoteWorkerPool(endpoints)
            shards = [RemoteShard("figure4", "equivalence", (name,),
                                  tuple(patterns))
                      for name in names[:6]]
            outcomes = pool.map(shards)
        assert [outcome.index for outcome in outcomes] == list(range(6))
        assert all(outcome.value.total_faults == 1 for outcome in outcomes)


class _DyingServant(FaultFarmServant):
    """Kills its own server the first time it is asked to simulate."""

    def __init__(self, server):
        super().__init__(isolate=False)
        self._server = server
        self.died = False

    def collect_report(self, task_id, collect_telemetry=False):
        if not self.died:
            self.died = True
            # Tears the TCP door down mid-call: the client never gets
            # this reply and subsequent pings are refused.
            self._server.stop_tcp()
        return super().collect_report(task_id, collect_telemetry)


class _PoisonServant(FaultFarmServant):
    """Rejects every shard while staying perfectly reachable."""

    def __init__(self, _server):
        super().__init__(isolate=False)

    def collect_report(self, task_id, collect_telemetry=False):
        super().collect_report(task_id, collect_telemetry)
        raise RuntimeError("this worker rejects all shards")


class TestFailureHandling:
    def test_dead_endpoint_retries_on_survivor(self):
        netlist, fault_list, patterns = figure4_campaign()
        serial = SerialFaultSimulator(netlist, fault_list).run(patterns)
        first = [True]

        def factory(server):
            if first[0]:
                first[0] = False
                return _DyingServant(server)
            return FaultFarmServant(isolate=False)

        with fault_farm(2, servant_factory=factory) as (endpoints,
                                                        servants):
            remote = remote_fault_simulate("figure4", patterns, endpoints)
            assert servants[0].died
            # The survivor picked up the dead worker's shards.
            assert servants[1].shards_served > 0
        assert diff_reports(remote, serial) == []

    def test_poison_shard_fails_fast_with_index(self):
        _, fault_list, patterns = figure4_campaign(patterns=4)
        with fault_farm(2) as (endpoints, _):
            pool = RemoteWorkerPool(endpoints)
            good = RemoteShard("figure4", "equivalence",
                               fault_list.names()[:2], tuple(patterns))
            poison = RemoteShard("figure4", "equivalence",
                                 ("no-such-fault sa0",), tuple(patterns))
            with pytest.raises(ParallelExecutionError) as excinfo:
                pool.map([good, poison])
        assert excinfo.value.shard_index == 1
        assert "every remaining endpoint" in str(excinfo.value)

    def test_all_workers_poisoned_fails_not_hangs(self):
        _, fault_list, patterns = figure4_campaign(patterns=4)
        with fault_farm(2, servant_factory=_PoisonServant) as (endpoints,
                                                               _):
            pool = RemoteWorkerPool(endpoints)
            shard = RemoteShard("figure4", "equivalence",
                                fault_list.names()[:2], tuple(patterns))
            with pytest.raises(ParallelExecutionError) as excinfo:
                pool.map([shard])
        assert excinfo.value.shard_index == 0

    def test_all_endpoints_dead_raises(self):
        _, fault_list, patterns = figure4_campaign(patterns=4)
        with fault_farm(1) as (endpoints, _):
            pass  # server torn down; the endpoint is now dead
        pool = RemoteWorkerPool(endpoints, timeout=1.0)
        shard = RemoteShard("figure4", "equivalence",
                            fault_list.names()[:2], tuple(patterns))
        with pytest.raises(ParallelExecutionError):
            pool.map([shard])

    def test_unknown_bench_is_a_poison_shard(self):
        _, fault_list, patterns = figure4_campaign(patterns=4)
        with fault_farm(1) as (endpoints, _):
            pool = RemoteWorkerPool(endpoints)
            shard = RemoteShard("not-a-bench", "equivalence",
                                fault_list.names()[:1], tuple(patterns))
            with pytest.raises(ParallelExecutionError):
                pool.map([shard])
