"""Scenario fan-out: Table 2 rows from isolated worker processes."""

from concurrent.futures import ProcessPoolExecutor

import pytest

from repro.bench.scenarios import run_table2
from repro.core.errors import ParallelExecutionError
from repro.parallel import (ScenarioSpec, reset_session_state,
                            run_scenarios_parallel, run_table2_parallel,
                            table2_specs)

WIDTH, PATTERNS, BUFFER = 4, 8, 2


def _fresh_serial_table2():
    # Runs in a forked child: reset the fork-inherited id counters so
    # the serial baseline matches a fresh-process run regardless of how
    # many tests the parent executed before this one (the counters leak
    # into marshalled frame sizes and hence modelled times).
    reset_session_state()
    return run_table2(width=WIDTH, patterns=PATTERNS, buffer_size=BUFFER)


class TestTable2Specs:
    def test_paper_row_order(self):
        specs = table2_specs(WIDTH, PATTERNS, BUFFER)
        assert [(spec.mode, spec.network) for spec in specs] == [
            ("AL", "localhost"),
            ("ER", "localhost"), ("MR", "localhost"),
            ("ER", "lan"), ("MR", "lan"),
            ("ER", "wan"), ("MR", "wan")]

    def test_specs_are_picklable(self):
        import pickle

        specs = table2_specs(WIDTH, PATTERNS, BUFFER)
        assert pickle.loads(pickle.dumps(specs)) == specs


class TestRunScenariosParallel:
    def test_unknown_network_preset_rejected(self):
        with pytest.raises(ParallelExecutionError):
            run_scenarios_parallel(
                [ScenarioSpec("ER", "carrier-pigeon", WIDTH, PATTERNS,
                              BUFFER)], workers=1)

    def test_single_spec_runs_inline(self):
        rows = run_scenarios_parallel(
            [ScenarioSpec("AL", "localhost", WIDTH, PATTERNS, BUFFER)],
            workers=4)
        assert len(rows) == 1
        assert rows[0].scenario == "AL"


class TestTable2Parallel:
    def test_rows_match_serial_table2(self):
        with ProcessPoolExecutor(max_workers=1) as pool:
            serial = pool.submit(_fresh_serial_table2).result()
        parallel = run_table2_parallel(width=WIDTH, patterns=PATTERNS,
                                       buffer_size=BUFFER, workers=2)
        assert len(parallel) == len(serial) == 7
        for expected, actual in zip(serial, parallel):
            assert actual.scenario == expected.scenario
            assert actual.host == expected.host
            assert actual.events == expected.events
            assert actual.remote_calls == expected.remote_calls
            assert actual.round_trips == expected.round_trips
            # Worker rows run from reset session state, so marshalled id
            # strings (and hence modelled byte/time charges) can differ
            # from an accumulated serial run by a few parts per million.
            assert actual.cpu == pytest.approx(expected.cpu, abs=0.1)
            assert actual.real == pytest.approx(expected.real, abs=0.5)

    def test_parallel_runs_are_reproducible(self):
        first = run_table2_parallel(width=WIDTH, patterns=PATTERNS,
                                    buffer_size=BUFFER, workers=2)
        second = run_table2_parallel(width=WIDTH, patterns=PATTERNS,
                                     buffer_size=BUFFER, workers=3)
        assert first == second
