"""Deterministic fault-list partitioning (round-robin and weighted)."""

import pytest

from repro.core.errors import ParallelExecutionError
from repro.faults import build_fault_list
from repro.gates import c17
from repro.parallel import (default_shard_count, round_robin_shards,
                            shard_fault_list, weighted_shards)

NAMES = [f"f{i}" for i in range(10)]


class TestDefaultShardCount:
    def test_cuts_several_shards_per_worker(self):
        assert default_shard_count(4, 1000) == 16

    def test_never_exceeds_item_count(self):
        assert default_shard_count(4, 3) == 3

    def test_empty_work_means_zero_shards(self):
        assert default_shard_count(4, 0) == 0

    def test_at_least_one_shard_for_any_work(self):
        assert default_shard_count(0, 5) == 1


class TestRoundRobinShards:
    def test_partitions_without_loss_or_overlap(self):
        shards = round_robin_shards(NAMES, 3)
        everything = [name for shard in shards for name in shard.names]
        assert sorted(everything) == sorted(NAMES)
        assert len(set(everything)) == len(NAMES)

    def test_balanced_within_one_item(self):
        sizes = [len(shard) for shard in round_robin_shards(NAMES, 3)]
        assert max(sizes) - min(sizes) <= 1

    def test_stable_across_calls(self):
        assert round_robin_shards(NAMES, 3) == round_robin_shards(NAMES, 3)

    def test_clamps_count_to_item_count(self):
        shards = round_robin_shards(["a", "b"], 5)
        assert len(shards) == 2

    def test_rejects_nonpositive_count(self):
        with pytest.raises(ParallelExecutionError):
            round_robin_shards(NAMES, 0)


class TestWeightedShards:
    def test_partitions_without_loss_or_overlap(self):
        shards = weighted_shards(NAMES, 3, lambda name: 1.0)
        everything = [name for shard in shards for name in shard.names]
        assert sorted(everything) == sorted(NAMES)

    def test_balances_skewed_weights(self):
        # One heavy item (weight 9) plus nine light ones: LPT puts the
        # heavy item alone-ish and spreads the rest.
        weights = {name: (9.0 if name == "f0" else 1.0) for name in NAMES}
        shards = weighted_shards(NAMES, 3, weights.__getitem__)
        loads = [sum(weights[name] for name in shard.names)
                 for shard in shards]
        assert max(loads) - min(loads) <= 5.0
        assert max(loads) < sum(weights.values())

    def test_preserves_original_order_within_a_shard(self):
        shards = weighted_shards(NAMES, 3, lambda name: 1.0)
        for shard in shards:
            indices = [NAMES.index(name) for name in shard.names]
            assert indices == sorted(indices)

    def test_deterministic(self):
        first = weighted_shards(NAMES, 4, lambda name: float(len(name)))
        second = weighted_shards(NAMES, 4, lambda name: float(len(name)))
        assert first == second

    def test_rejects_negative_weights(self):
        with pytest.raises(ParallelExecutionError):
            weighted_shards(NAMES, 2, lambda name: -1.0)


class TestShardFaultList:
    def test_covers_every_fault_exactly_once(self):
        fault_list = build_fault_list(c17())
        shards = shard_fault_list(fault_list, 4)
        everything = [name for shard in shards for name in shard.names]
        assert sorted(everything) == sorted(fault_list.names())

    def test_subsets_reconstruct_the_fault_list(self):
        fault_list = build_fault_list(c17())
        shards = shard_fault_list(fault_list, 3)
        total = sum(len(fault_list.subset(shard.names))
                    for shard in shards)
        assert total == len(fault_list)
