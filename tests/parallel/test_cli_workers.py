"""The CLI's --workers / --report-out / --rmi-timeout plumbing."""

import json

import pytest

from repro.cli import main
from repro.rmi.wire import WIRE_OPTIONS


class TestFaultsimWorkers:
    def test_builtin_bench_accepted(self, capsys):
        assert main(["faultsim", "c17", "--patterns", "8"]) == 0
        out = capsys.readouterr().out
        assert "6 gates" in out
        assert "coverage" in out

    def test_unknown_bench_rejected(self, capsys):
        assert main(["faultsim", "no-such-bench"]) == 2
        assert "neither a file nor a builtin" in capsys.readouterr().err

    def test_parallel_report_equals_serial_report(self, tmp_path,
                                                  capsys):
        serial_path = tmp_path / "serial.json"
        parallel_path = tmp_path / "parallel.json"
        assert main(["faultsim", "figure4", "--patterns", "16",
                     "--workers", "1",
                     "--report-out", str(serial_path)]) == 0
        assert main(["faultsim", "figure4", "--patterns", "16",
                     "--workers", "2",
                     "--report-out", str(parallel_path)]) == 0
        capsys.readouterr()
        serial = json.loads(serial_path.read_text())
        parallel = json.loads(parallel_path.read_text())
        assert parallel["workers"] == 2
        for key in ("total_faults", "detected", "coverage", "undetected",
                    "coverage_history"):
            assert parallel[key] == serial[key], key

    def test_workers_line_printed_for_parallel_runs(self, capsys):
        assert main(["faultsim", "figure4", "--patterns", "8",
                     "--workers", "2"]) == 0
        assert "sharded across 2 workers" in capsys.readouterr().out


class TestAtpgWorkers:
    def test_parallel_atpg_reaches_serial_coverage(self, capsys):
        assert main(["atpg", "c17", "--workers", "2",
                     "--random-patterns", "8"]) == 0
        out = capsys.readouterr().out
        assert "coverage 100.0%" in out


class TestRmiTimeoutFlag:
    def test_flag_sets_and_restores_wire_options(self, capsys):
        before = WIRE_OPTIONS.rmi_timeout
        assert main(["faultsim", "c17", "--patterns", "4",
                     "--rmi-timeout", "9.5"]) == 0
        capsys.readouterr()
        assert WIRE_OPTIONS.rmi_timeout == before

    def test_nonpositive_timeout_rejected(self):
        with pytest.raises(ValueError):
            WIRE_OPTIONS.configure(rmi_timeout=0.0)
