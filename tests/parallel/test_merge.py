"""Exact recombination of per-shard reports and ATPG test sets."""

import random

import pytest

from repro.core import Logic
from repro.core.errors import ParallelExecutionError
from repro.faults import SerialFaultSimulator, build_fault_list
from repro.faults.atpg import generate_test_set
from repro.faults.serial import FaultSimReport
from repro.gates import c17
from repro.parallel import (diff_reports, merge_reports, merge_test_sets,
                            round_robin_shards)


def c17_patterns(count, seed=0):
    netlist = c17()
    rng = random.Random(seed)
    return [{net: Logic(rng.getrandbits(1)) for net in netlist.inputs}
            for _ in range(count)]


class TestMergeReports:
    def test_empty_merge_is_empty_report(self):
        merged = merge_reports([])
        assert merged.total_faults == 0
        assert merged.detected == {}

    def test_split_and_merge_equals_full_run(self):
        netlist = c17()
        fault_list = build_fault_list(netlist, collapse="none")
        patterns = c17_patterns(20)
        full = SerialFaultSimulator(netlist, fault_list).run(patterns)
        partials = []
        for shard in round_robin_shards(fault_list.names(), 3):
            subset = fault_list.subset(shard.names)
            partials.append(
                SerialFaultSimulator(netlist, subset).run(patterns))
        merged = merge_reports(partials)
        assert diff_reports(full, merged) == []
        assert merged.detected == full.detected
        assert merged.coverage == full.coverage
        assert merged.coverage_history() == full.coverage_history()

    def test_single_report_passthrough(self):
        netlist = c17()
        report = SerialFaultSimulator(netlist).run(c17_patterns(4))
        merged = merge_reports([report])
        assert diff_reports(report, merged) == []

    def test_mismatched_pattern_counts_rejected(self):
        first = FaultSimReport(total_faults=1, per_pattern=[set()])
        second = FaultSimReport(total_faults=1,
                                per_pattern=[set(), set()])
        with pytest.raises(ParallelExecutionError):
            merge_reports([first, second])

    def test_overlapping_shards_rejected(self):
        first = FaultSimReport(total_faults=1, detected={"f": 0},
                               per_pattern=[{"f"}])
        second = FaultSimReport(total_faults=1, detected={"f": 0},
                                per_pattern=[{"f"}])
        with pytest.raises(ParallelExecutionError):
            merge_reports([first, second])


class TestDiffReports:
    def test_identical_reports_have_no_diff(self):
        netlist = c17()
        patterns = c17_patterns(8)
        first = SerialFaultSimulator(netlist).run(patterns)
        second = SerialFaultSimulator(netlist).run(patterns)
        assert diff_reports(first, second) == []

    def test_differences_are_described(self):
        first = FaultSimReport(total_faults=2, detected={"f": 0},
                               per_pattern=[{"f"}])
        second = FaultSimReport(total_faults=3, detected={"g": 0},
                                per_pattern=[{"g"}])
        problems = diff_reports(first, second)
        assert problems
        assert any("total_faults" in line for line in problems)


class TestMergeTestSets:
    def test_merged_set_covers_the_union(self):
        netlist = c17()
        fault_list = build_fault_list(netlist, collapse="none")
        shards = round_robin_shards(fault_list.names(), 2)
        partial_sets = [
            generate_test_set(netlist, fault_list.subset(shard.names),
                              random_patterns=8, seed=0)
            for shard in shards]
        merged = merge_test_sets(partial_sets)
        assert len(merged.patterns) == sum(len(ts.patterns)
                                           for ts in partial_sets)
        assert set(merged.detected) == set(partial_sets[0].detected) \
            | set(partial_sets[1].detected)
        # Detection indices are rebased into the concatenated pattern
        # list, so every recorded index must be addressable.
        for index in merged.detected.values():
            assert 0 <= index < len(merged.patterns)
