"""WorkerPool ordering, failure propagation and telemetry round-trip."""

import pytest

from repro.core.errors import ParallelExecutionError
from repro.parallel import TaskOutcome, WorkerPool, resolve_workers
from repro.telemetry import TELEMETRY


def _square(value):
    return value * value


def _fail_on_three(value):
    if value == 3:
        raise ValueError("task three exploded")
    return value


def _count_in_worker(value):
    TELEMETRY.metrics.counter("worker.side.effects").inc(value)
    return value


class TestResolveWorkers:
    def test_zero_and_none_mean_auto(self):
        assert resolve_workers(0) >= 1
        assert resolve_workers(None) >= 1

    def test_explicit_count_passes_through(self):
        assert resolve_workers(3) == 3

    def test_negative_rejected(self):
        with pytest.raises(ParallelExecutionError):
            resolve_workers(-1)


class TestWorkerPoolMap:
    def test_results_in_submission_order(self):
        outcomes = WorkerPool(2).map(_square, [5, 4, 3, 2, 1])
        assert [outcome.value for outcome in outcomes] == [25, 16, 9, 4, 1]
        assert [outcome.index for outcome in outcomes] == [0, 1, 2, 3, 4]

    def test_empty_payloads(self):
        assert WorkerPool(2).map(_square, []) == []

    def test_single_payload_runs_inline(self):
        import os

        outcomes = WorkerPool(4).map(_square, [7])
        assert outcomes[0].value == 49
        assert outcomes[0].worker_pid == os.getpid()

    def test_workers_one_runs_inline(self):
        import os

        outcomes = WorkerPool(1).map(_square, [2, 3])
        assert [outcome.value for outcome in outcomes] == [4, 9]
        assert all(outcome.worker_pid == os.getpid()
                   for outcome in outcomes)

    def test_failure_raises_with_cause(self):
        with pytest.raises(ParallelExecutionError) as info:
            WorkerPool(2).map(_fail_on_three, [1, 2, 3, 4])
        assert "task" in str(info.value)

    def test_outcomes_are_task_outcomes(self):
        outcomes = WorkerPool(2).map(_square, [1, 2])
        assert all(isinstance(outcome, TaskOutcome)
                   for outcome in outcomes)
        assert all(outcome.wall_seconds >= 0.0 for outcome in outcomes)


class TestTelemetryAggregation:
    def test_worker_metrics_fold_into_parent(self):
        TELEMETRY.reset()
        TELEMETRY.enable()
        try:
            WorkerPool(2).map(_count_in_worker, [1, 2, 3, 4])
            snapshot = TELEMETRY.metrics.snapshot()
        finally:
            TELEMETRY.disable()
            TELEMETRY.reset()
        assert snapshot["parallel.tasks"]["value"] == 4
        assert snapshot["parallel.workers"]["value"] == 2
        assert snapshot["parallel.task_wall_seconds"]["count"] == 4
        assert snapshot["parallel.pool_wall_seconds"]["value"] > 0.0
        # Worker-side counters come back summed across all workers.
        assert snapshot["parallel.worker.worker.side.effects"]["value"] \
            == 1 + 2 + 3 + 4

    def test_no_telemetry_no_parallel_metrics(self):
        TELEMETRY.reset()
        WorkerPool(2).map(_square, [1, 2, 3])
        assert "parallel.tasks" not in TELEMETRY.metrics.snapshot()


def _fail_fast_or_hang(value):
    import time as _time

    if value == 0:
        raise ValueError("fails immediately")
    _time.sleep(5.0)
    return value


class TestFirstFailureShutdown:
    def test_failure_carries_shard_index(self):
        with pytest.raises(ParallelExecutionError) as excinfo:
            WorkerPool(2).map(_fail_on_three, [1, 2, 3, 4])
        assert excinfo.value.shard_index == 2

    def test_failure_does_not_wait_for_hung_siblings(self):
        import time as _time

        begin = _time.perf_counter()
        with pytest.raises(ParallelExecutionError) as excinfo:
            WorkerPool(2).map(_fail_fast_or_hang, list(range(8)))
        elapsed = _time.perf_counter() - begin
        assert excinfo.value.shard_index == 0
        # The sibling worker sleeps for 5s; the failure must surface
        # without waiting for it (pre-fix: executor shutdown blocked).
        assert elapsed < 4.0
