"""Remote pool endpoint connect: bounded retry, backoff, triage."""

import random
import socket
import threading
import time

import pytest

from repro.core.errors import ParallelExecutionError
from repro.core.signal import Logic
from repro.parallel.remote import (RemoteShard, RemoteWorkerPool,
                                   remote_fault_simulate, resolve_bench)
from repro.server import AsyncRMIServer
from repro.server.farm import fault_farm_session_factory
from repro.telemetry import TELEMETRY


def free_port():
    probe = socket.socket()
    probe.bind(("127.0.0.1", 0))
    port = probe.getsockname()[1]
    probe.close()
    return port


def c17_campaign(patterns=12, seed=0):
    netlist = resolve_bench("c17")
    rng = random.Random(seed)
    return [{net: Logic(rng.getrandbits(1)) for net in netlist.inputs}
            for _ in range(patterns)]


def trivial_shard():
    return RemoteShard("c17", "equivalence", ("G1 sa0",),
                       tuple(c17_campaign(2)))


class TestConstruction:
    def test_rejects_negative_retries(self):
        with pytest.raises(ParallelExecutionError):
            RemoteWorkerPool(["h:1"], connect_retries=-1)

    def test_rejects_nonpositive_backoff(self):
        with pytest.raises(ParallelExecutionError):
            RemoteWorkerPool(["h:1"], connect_backoff=0)


class TestDeadEndpoints:
    def test_dead_endpoint_fails_after_bounded_retries(self):
        pool = RemoteWorkerPool([f"127.0.0.1:{free_port()}"],
                                connect_retries=2, connect_backoff=0.01)
        begin = time.monotonic()
        with pytest.raises(ParallelExecutionError,
                           match="no remote endpoint"):
            pool.map([trivial_shard()])
        # 3 attempts with 10-20ms backoffs, nowhere near call timeouts.
        assert time.monotonic() - begin < 5.0

    def test_connect_retries_reach_telemetry(self):
        TELEMETRY.reset()
        TELEMETRY.enable()
        try:
            pool = RemoteWorkerPool([f"127.0.0.1:{free_port()}"],
                                    connect_retries=3,
                                    connect_backoff=0.01)
            with pytest.raises(ParallelExecutionError):
                pool.map([trivial_shard()])
        finally:
            TELEMETRY.disable()
        # The run failed before _account ran, so read the state the
        # next successful run would export: retry again with a live
        # sibling so the run finishes and exports.
        TELEMETRY.reset()
        TELEMETRY.enable()
        try:
            server = AsyncRMIServer(
                session_factory=fault_farm_session_factory())
            host, port = server.start()
            try:
                pool = RemoteWorkerPool(
                    [f"127.0.0.1:{free_port()}", f"{host}:{port}"],
                    connect_retries=1, connect_backoff=0.01)
                report = remote_fault_simulate(
                    "c17", c17_campaign(), [], pool=pool)
            finally:
                server.stop()
            retries = TELEMETRY.metrics.get(
                "parallel.remote.connect_retries")
            failures = TELEMETRY.metrics.get(
                "parallel.remote.endpoint_failures")
        finally:
            TELEMETRY.disable()
            TELEMETRY.reset()
        assert report.total_faults == 22
        assert retries is not None and retries.value == 1
        assert failures is not None and failures.value == 1

    def test_survivor_absorbs_a_dead_siblings_share(self):
        server = AsyncRMIServer(
            session_factory=fault_farm_session_factory())
        host, port = server.start()
        try:
            pool = RemoteWorkerPool(
                [f"127.0.0.1:{free_port()}", f"{host}:{port}"],
                connect_retries=0, connect_backoff=0.01)
            report = remote_fault_simulate("c17", c17_campaign(), [],
                                           pool=pool, workers=4)
        finally:
            server.stop()
        assert report.total_faults == 22
        assert report.detected_count > 0


class TestBareOSErrors:
    """Bare OSErrors (unwrapped by RemoteError) must still retry.

    The eager ``connect()`` path can surface ``ConnectionRefusedError``
    and friends directly; the retry predicate used to require
    ``exc.__cause__`` to be an OSError, so these escaped both the
    bounded-retry loop and the connect_retries telemetry.
    """

    def test_bare_refusal_is_retried_to_exhaustion(self, monkeypatch):
        from repro.rmi.transport import TcpTransport as Tcp

        attempts = []

        def refuse(self):
            attempts.append(1)
            raise ConnectionRefusedError("refused (bare)")

        monkeypatch.setattr(Tcp, "connect", refuse)
        pool = RemoteWorkerPool([f"127.0.0.1:{free_port()}"],
                                connect_retries=2, connect_backoff=0.01)
        with pytest.raises(ParallelExecutionError,
                           match="no remote endpoint"):
            pool.map([trivial_shard()])
        assert len(attempts) == 3  # initial try + connect_retries

    def test_bare_oserror_retries_reach_telemetry(self, monkeypatch):
        from repro.rmi.transport import TcpTransport as Tcp

        real_connect = Tcp.connect
        refusals = []

        def refuse_one_endpoint(self):
            if self.port == dead_port:
                refusals.append(1)
                raise OSError("unroutable (bare)")
            return real_connect(self)

        dead_port = free_port()
        monkeypatch.setattr(Tcp, "connect", refuse_one_endpoint)
        TELEMETRY.reset()
        TELEMETRY.enable()
        try:
            server = AsyncRMIServer(
                session_factory=fault_farm_session_factory())
            host, port = server.start()
            try:
                pool = RemoteWorkerPool(
                    [f"127.0.0.1:{dead_port}", f"{host}:{port}"],
                    connect_retries=2, connect_backoff=0.01)
                report = remote_fault_simulate(
                    "c17", c17_campaign(), [], pool=pool)
            finally:
                server.stop()
            retries = TELEMETRY.metrics.get(
                "parallel.remote.connect_retries")
            failures = TELEMETRY.metrics.get(
                "parallel.remote.endpoint_failures")
        finally:
            TELEMETRY.disable()
            TELEMETRY.reset()
        assert report.total_faults == 22
        assert len(refusals) == 3
        assert retries is not None and retries.value == 2
        assert failures is not None and failures.value == 1


class TestLateEndpoints:
    def test_backoff_reaches_an_endpoint_that_starts_late(self):
        port = free_port()
        server = AsyncRMIServer(
            session_factory=fault_farm_session_factory(), port=port)
        timer = threading.Timer(0.4, server.start)
        timer.start()
        try:
            pool = RemoteWorkerPool([f"127.0.0.1:{port}"],
                                    connect_retries=10,
                                    connect_backoff=0.05)
            report = remote_fault_simulate("c17", c17_campaign(), [],
                                           pool=pool)
        finally:
            timer.join()
            server.stop()
        assert report.total_faults == 22


class TestDeterministicRefusals:
    def test_wrong_token_is_not_retried(self):
        server = AsyncRMIServer(
            session_factory=fault_farm_session_factory(),
            auth_token="right")
        host, port = server.start()
        try:
            # With retries this would sleep >= 4s; the auth rejection
            # must fail the endpoint on the first attempt instead.
            pool = RemoteWorkerPool([f"{host}:{port}"], token="wrong",
                                    connect_retries=3,
                                    connect_backoff=4.0)
            begin = time.monotonic()
            with pytest.raises(ParallelExecutionError,
                               match="authentication"):
                pool.map([trivial_shard()])
            assert time.monotonic() - begin < 3.0
        finally:
            server.stop()
        assert server.stats.auth_failures == 1


class TestSecureFarm:
    def test_tls_token_farm_matches_plain(self):
        import os
        cert = os.path.join(os.path.dirname(__file__), os.pardir,
                            "data", "tls", "server.pem")
        key = os.path.join(os.path.dirname(__file__), os.pardir,
                           "data", "tls", "server.key")
        from repro.rmi import server_ssl_context

        patterns = c17_campaign()
        secure = AsyncRMIServer(
            session_factory=fault_farm_session_factory(),
            ssl_context=server_ssl_context(cert, key),
            auth_token="tok")
        host, port = secure.start()
        try:
            secured = remote_fault_simulate(
                "c17", patterns, [f"{host}:{port}"], token="tok",
                tls_ca=cert)
        finally:
            secure.stop()
        plain_server = AsyncRMIServer(
            session_factory=fault_farm_session_factory())
        host, port = plain_server.start()
        try:
            plain = remote_fault_simulate("c17", patterns,
                                          [f"{host}:{port}"])
        finally:
            plain_server.stop()
        assert secured.detected == plain.detected
        assert secured.per_pattern == plain.per_pattern
