"""Satellite 1: serial vs sharded runs are identical, repeatably.

Fault dropping removes a fault only after its own first detection, so
detection of one fault never depends on the rest of the target list --
a disjoint sharding of the fault list merges back to exactly the
serial report.  These tests pin that guarantee on the paper's Figure 4
bench and on the embedded-IP bench, twice each, so flaky ordering
would show up as a diff.
"""

import random

import pytest

from repro.bench.faultbench import (build_embedded, embedded_simulator,
                                    figure4_flat_netlist,
                                    figure4_simulator, ip1_block)
from repro.core import Logic
from repro.faults import SerialFaultSimulator, build_fault_list
from repro.parallel import (diff_reports, parallel_fault_simulate,
                            parallel_virtual_fault_simulate)

WORKERS = 4


def random_patterns(netlist, count, seed=0):
    rng = random.Random(seed)
    return [{net: Logic(rng.getrandbits(1)) for net in netlist.inputs}
            for _ in range(count)]


class TestFigure4Determinism:
    def test_parallel_matches_serial_repeatedly(self):
        netlist = figure4_flat_netlist()
        fault_list = build_fault_list(netlist, collapse="none")
        patterns = random_patterns(netlist, 32)
        serial = SerialFaultSimulator(netlist, fault_list).run(patterns)
        for _ in range(2):
            parallel = parallel_fault_simulate(
                netlist, patterns, fault_list=fault_list, workers=WORKERS)
            assert diff_reports(serial, parallel) == []
            assert parallel.detected == serial.detected
            assert parallel.coverage == serial.coverage

    def test_every_worker_count_gives_the_same_report(self):
        netlist = figure4_flat_netlist()
        fault_list = build_fault_list(netlist)
        patterns = random_patterns(netlist, 16)
        serial = SerialFaultSimulator(netlist, fault_list).run(patterns)
        for workers in (2, 3, 4):
            parallel = parallel_fault_simulate(
                netlist, patterns, fault_list=fault_list, workers=workers)
            assert diff_reports(serial, parallel) == []

    def test_undetected_lists_match(self):
        netlist = figure4_flat_netlist()
        fault_list = build_fault_list(netlist, collapse="none")
        patterns = random_patterns(netlist, 4, seed=9)
        serial = SerialFaultSimulator(netlist, fault_list).run(patterns)
        parallel = parallel_fault_simulate(
            netlist, patterns, fault_list=fault_list, workers=WORKERS)
        names = fault_list.names()
        assert parallel.undetected(names) == serial.undetected(names)


class TestEmbeddedDeterminism:
    def test_embedded_flat_parallel_matches_serial(self):
        experiment = build_embedded(ip1_block())
        patterns = experiment.random_patterns(24, seed=1)
        flat = experiment.serial.netlist
        fault_list = experiment.serial.fault_list
        logic_patterns = experiment.patterns_as_logic(patterns)
        serial = SerialFaultSimulator(flat, fault_list).run(logic_patterns)
        for _ in range(2):
            parallel = parallel_fault_simulate(
                flat, logic_patterns, fault_list=fault_list,
                workers=WORKERS)
            assert diff_reports(serial, parallel) == []

    def test_embedded_virtual_parallel_matches_serial(self):
        experiment = build_embedded(ip1_block())
        patterns = experiment.random_patterns(10, seed=3)
        serial = embedded_simulator().run(patterns)
        parallel = parallel_virtual_fault_simulate(
            embedded_simulator, patterns, workers=2)
        assert diff_reports(serial, parallel) == []


class TestVirtualFigure4Determinism:
    def test_virtual_parallel_matches_serial(self):
        netlist = figure4_flat_netlist()
        patterns = random_patterns(netlist, 16, seed=2)
        serial = figure4_simulator(collapse="none").run(patterns)
        parallel = parallel_virtual_fault_simulate(
            figure4_simulator, patterns, workers=3,
            factory_kwargs={"collapse": "none"})
        assert diff_reports(serial, parallel) == []

    def test_restricted_runs_partition_the_full_run(self):
        from repro.parallel import merge_reports

        netlist = figure4_flat_netlist()
        patterns = random_patterns(netlist, 8, seed=5)
        full = figure4_simulator().run(patterns)
        all_names = list(figure4_simulator().build_fault_list())
        halves = (all_names[0::2], all_names[1::2])
        partials = [figure4_simulator().run(patterns, only=half)
                    for half in halves]
        merged = merge_reports(partials)
        assert diff_reports(full, merged) == []

    def test_unknown_restricted_name_rejected(self):
        netlist = figure4_flat_netlist()
        patterns = random_patterns(netlist, 2)
        from repro.core.errors import FaultSimulationError

        simulator = figure4_simulator()
        with pytest.raises(FaultSimulationError):
            simulator.run(patterns, only=["IP1:nosuchfault"])
