"""RT-level combinational behavioural modules."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (BitConnector, Circuit, DesignError, Logic,
                        PatternPrimaryInput, PrimaryOutput,
                        SimulationController, Word, WordConnector)
from repro.rtl import (BitwiseAnd, BitwiseOr, BitwiseXor, WordAdder,
                       WordFunction, WordMultiplier, WordMux,
                       WordSubtractor)


def run_binary(module_cls, width, pairs, **kwargs):
    a, b = WordConnector(width), WordConnector(width)
    out_width = kwargs.get("out_width") or \
        (2 * width if module_cls is WordMultiplier else width)
    o = WordConnector(out_width)
    module = module_cls(width, a, b, o, **kwargs)
    ina = PatternPrimaryInput(width, [p[0] for p in pairs], a, name="INA")
    inb = PatternPrimaryInput(width, [p[1] for p in pairs], b, name="INB")
    out = PrimaryOutput(out_width, o, name="OUT")
    controller = SimulationController(Circuit(ina, inb, module, out))
    controller.start()
    values = [v for _t, v in out.trace(controller.context) if v.known]
    # The module re-emits per input event; keep the settled value per
    # instant (the last one).
    return values, controller


class TestWordOps:
    @given(st.integers(0, 255), st.integers(0, 255))
    @settings(max_examples=25, deadline=None)
    def test_adder(self, a, b):
        values, _ = run_binary(WordAdder, 8, [(a, b)])
        assert values[-1].value == (a + b) % 256

    @given(st.integers(0, 255), st.integers(0, 255))
    @settings(max_examples=25, deadline=None)
    def test_subtractor(self, a, b):
        values, _ = run_binary(WordSubtractor, 8, [(a, b)])
        assert values[-1].value == (a - b) % 256

    @given(st.integers(0, 255), st.integers(0, 255))
    @settings(max_examples=25, deadline=None)
    def test_multiplier_double_width(self, a, b):
        values, _ = run_binary(WordMultiplier, 8, [(a, b)])
        assert values[-1].value == a * b
        assert values[-1].width == 16

    def test_bitwise_family(self):
        for cls, fn in ((BitwiseAnd, lambda a, b: a & b),
                        (BitwiseOr, lambda a, b: a | b),
                        (BitwiseXor, lambda a, b: a ^ b)):
            values, _ = run_binary(cls, 8, [(0xAC, 0x35)])
            assert values[-1].value == fn(0xAC, 0x35)

    def test_sequence_of_patterns(self):
        values, _ = run_binary(WordAdder, 8, [(1, 1), (2, 3), (100, 200)])
        settled = [v.value for v in values]
        assert settled[-1] == (100 + 200) % 256
        assert 5 in settled

    def test_word_function(self):
        a, b = WordConnector(8), WordConnector(8)
        o = WordConnector(8)
        module = WordFunction(8, a, b, o,
                              fn=lambda x, y: Word(max(x.value, y.value),
                                                   8), name="MAX")
        ina = PatternPrimaryInput(8, [3], a, name="INA")
        inb = PatternPrimaryInput(8, [9], b, name="INB")
        out = PrimaryOutput(8, o, name="OUT")
        controller = SimulationController(Circuit(ina, inb, module, out))
        controller.start()
        assert out.last_value(controller.context).value == 9

    def test_negative_delay_rejected(self):
        with pytest.raises(DesignError):
            WordAdder(8, WordConnector(8), WordConnector(8),
                      WordConnector(8), delay=-1)

    def test_unknown_operand_yields_unknown(self):
        """First event arrives before the second operand: the output is
        an unknown word until both are seen."""
        a, b = WordConnector(8), WordConnector(8)
        o = WordConnector(16)
        module = WordMultiplier(8, a, b, o, name="M")
        ina = PatternPrimaryInput(8, [5], a, name="INA")
        inb = PatternPrimaryInput(8, [6], b, name="INB")
        out = PrimaryOutput(16, o, name="OUT")
        controller = SimulationController(Circuit(ina, inb, module, out))
        controller.start()
        trace = [v for _t, v in out.trace(controller.context)]
        assert not trace[0].known
        assert trace[-1] == Word(30, 16)


class TestWordMux:
    def build(self, select_bits, a_vals, b_vals):
        sel = BitConnector()
        a, b, o = (WordConnector(8) for _ in range(3))
        insel = PatternPrimaryInput(1, select_bits, sel, name="INS")
        ina = PatternPrimaryInput(8, a_vals, a, name="INA")
        inb = PatternPrimaryInput(8, b_vals, b, name="INB")
        mux = WordMux(8, sel, a, b, o, name="MUX")
        out = PrimaryOutput(8, o, name="OUT")
        controller = SimulationController(
            Circuit(insel, ina, inb, mux, out))
        controller.start()
        return out, controller

    def test_selects_a_and_b(self):
        out, controller = self.build([0, 1], [11, 11], [22, 22])
        values = [v.value for _t, v in out.trace(controller.context)
                  if v.known]
        assert values[-1] == 22
        assert 11 in values

    def test_unknown_select_yields_unknown(self):
        sel = BitConnector()
        a, b, o = (WordConnector(8) for _ in range(3))
        ina = PatternPrimaryInput(8, [11], a, name="INA")
        inb = PatternPrimaryInput(8, [22], b, name="INB")
        mux = WordMux(8, sel, a, b, o, name="MUX")
        out = PrimaryOutput(8, o, name="OUT")
        controller = SimulationController(Circuit(ina, inb, mux, out))
        controller.start()
        assert not out.last_value(controller.context).known
