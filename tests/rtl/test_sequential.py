"""RT-level sequential behavioural modules."""

import pytest

from repro.core import (BitConnector, Circuit, ClockGenerator, DesignError,
                        PatternPrimaryInput, PrimaryOutput,
                        SimulationController, Word, WordConnector)
from repro.rtl import Accumulator, Counter, MooreMachine


def clocked_run(modules, out, max_time=None):
    controller = SimulationController(Circuit(*modules))
    controller.start(max_time=max_time)
    return controller


class TestCounter:
    def test_counts_rising_edges(self):
        clk, q = BitConnector(), WordConnector(4)
        clock = ClockGenerator(clk, period=2.0, cycles=5,
                               start_high=False, name="CLK")
        counter = Counter(4, clk, q, name="CNT")
        out = PrimaryOutput(4, q, name="OUT")
        controller = clocked_run([clock, counter, out], out)
        # The first rising edge emits the start value, then increments.
        values = [v.value for _t, v in out.trace(controller.context)]
        assert values == [0, 1, 2, 3, 4]
        assert counter.count(controller.context) == 4

    def test_wraps_at_width(self):
        clk, q = BitConnector(), WordConnector(2)
        clock = ClockGenerator(clk, period=2.0, cycles=5,
                               start_high=False, name="CLK")
        counter = Counter(2, clk, q, name="CNT")
        out = PrimaryOutput(2, q, name="OUT")
        controller = clocked_run([clock, counter, out], out)
        values = [v.value for _t, v in out.trace(controller.context)]
        assert values == [0, 1, 2, 3, 0]

    def test_step_and_start(self):
        clk, q = BitConnector(), WordConnector(8)
        clock = ClockGenerator(clk, period=2.0, cycles=3,
                               start_high=False, name="CLK")
        counter = Counter(8, clk, q, step=10, start=5, name="CNT")
        out = PrimaryOutput(8, q, name="OUT")
        controller = clocked_run([clock, counter, out], out)
        values = [v.value for _t, v in out.trace(controller.context)]
        assert values == [5, 15, 25]

    def test_no_count_before_first_edge(self):
        clk, q = BitConnector(), WordConnector(4)
        counter = Counter(4, clk, q, name="CNT")
        out = PrimaryOutput(4, q, name="OUT")
        controller = clocked_run([counter, out], out)
        assert counter.count(controller.context) is None


class TestAccumulator:
    def test_accumulates_on_edges(self):
        clk = BitConnector()
        d, q = WordConnector(8), WordConnector(8)
        # Data changes at t=0,1,2,...; rising edges at t=1,3,5.
        data = PatternPrimaryInput(8, [10, 10, 20, 20, 30, 30], d,
                                   name="IND")
        clock = ClockGenerator(clk, period=2.0, cycles=3,
                               start_high=False, name="CLK")
        accumulator = Accumulator(8, d, clk, q, name="ACC")
        out = PrimaryOutput(8, q, name="OUT")
        controller = clocked_run([data, clock, accumulator, out], out)
        values = [v.value for _t, v in out.trace(controller.context)]
        assert values == [10, 30, 60]

    def test_unknown_data_skipped(self):
        clk = BitConnector()
        d, q = WordConnector(8), WordConnector(8)
        clock = ClockGenerator(clk, period=2.0, cycles=2,
                               start_high=False, name="CLK")
        accumulator = Accumulator(8, d, clk, q, name="ACC")
        out = PrimaryOutput(8, q, name="OUT")
        controller = clocked_run([clock, accumulator, out], out)
        assert out.trace(controller.context) == []


class TestMooreMachine:
    def test_transition_table(self):
        # A 2-state toggle machine: symbol 1 flips the state.
        transitions = {(0, 1): 1, (1, 1): 0, (0, 0): 0, (1, 0): 1}
        outputs = {0: 100, 1: 200}
        clk = BitConnector()
        d, q = WordConnector(8), WordConnector(8)
        data = PatternPrimaryInput(8, [1, 1, 1, 1, 0, 0], d, name="IND")
        clock = ClockGenerator(clk, period=2.0, cycles=3,
                               start_high=False, name="CLK")
        machine = MooreMachine(8, d, clk, q, transitions, outputs,
                               name="FSM")
        out = PrimaryOutput(8, q, name="OUT")
        controller = clocked_run([data, clock, machine, out], out)
        values = [v.value for _t, v in out.trace(controller.context)]
        assert values == [200, 100, 100]
        assert machine.current_state(controller.context) == 0

    def test_missing_transition_self_loops(self):
        transitions = {}
        clk = BitConnector()
        d, q = WordConnector(4), WordConnector(4)
        data = PatternPrimaryInput(4, [7, 7], d, name="IND")
        clock = ClockGenerator(clk, period=2.0, cycles=1,
                               start_high=False, name="CLK")
        machine = MooreMachine(4, d, clk, q, transitions, {0: 3},
                               initial_state=0, name="FSM")
        out = PrimaryOutput(4, q, name="OUT")
        controller = clocked_run([data, clock, machine, out], out)
        assert machine.current_state(controller.context) == 0
        assert out.last_value(controller.context) == Word(3, 4)


class TestClockValidation:
    def test_non_logic_clock_rejected(self):
        clk = WordConnector(4)  # wrong: clock must be a bit connector
        q = WordConnector(4)
        counter = Counter(4, None, q, name="CNT")
        # Building with a word connector on the clk port fails at the
        # port width check already.
        with pytest.raises(Exception):
            clk.attach(counter.port("clk"))
