"""Network models: call-time arithmetic and the paper's presets."""

import pytest

from repro.net import LAN, LOCALHOST, PRESETS, WAN, NetworkModel


class TestCallTime:
    def test_formula(self):
        model = NetworkModel("m", latency=0.01, bandwidth=1000.0)
        assert model.transfer_time(500) == pytest.approx(0.5)
        assert model.call_time(300, 200) == pytest.approx(
            2 * 0.01 + 500 / 1000.0)

    def test_zero_payload(self):
        model = NetworkModel("m", latency=0.05, bandwidth=1e6)
        assert model.call_time(0, 0) == pytest.approx(0.1)

    def test_negative_bytes_rejected(self):
        with pytest.raises(ValueError):
            LAN.transfer_time(-1)


class TestPresets:
    def test_registry(self):
        assert PRESETS == {"localhost": LOCALHOST, "lan": LAN, "wan": WAN}

    def test_ordering_of_latencies(self):
        assert LOCALHOST.latency < LAN.latency < WAN.latency

    def test_ordering_of_bandwidths(self):
        assert LOCALHOST.bandwidth > LAN.bandwidth > WAN.bandwidth

    def test_only_localhost_shares_the_host(self):
        assert LOCALHOST.shared_host
        assert not LAN.shared_host and not WAN.shared_host

    def test_same_call_costs_more_with_distance(self):
        for request, reply in ((100, 100), (2000, 50)):
            assert LOCALHOST.call_time(request, reply) < \
                LAN.call_time(request, reply) < \
                WAN.call_time(request, reply)

    def test_frozen(self):
        with pytest.raises(Exception):
            LAN.latency = 0.0
