"""Virtual clock: CPU/wall accounting, async completions, threads."""

import threading

import pytest

from repro.net import CostModel, VirtualClock


class TestCharging:
    def test_cpu_advances_both(self):
        clock = VirtualClock()
        clock.charge_cpu(2.0)
        assert clock.cpu == 2.0 and clock.wall == 2.0

    def test_wait_advances_wall_only(self):
        clock = VirtualClock()
        clock.wait(3.0)
        assert clock.cpu == 0.0 and clock.wall == 3.0

    def test_server_cpu_separate(self):
        clock = VirtualClock()
        clock.charge_server_cpu(5.0)
        assert clock.server_cpu == 5.0
        assert clock.wall == 0.0  # remote host: no client wall impact

    def test_shared_host_contention(self):
        """Server work on the client's machine steals wall time -- the
        paper's local-host anomaly."""
        clock = VirtualClock()
        clock.charge_server_cpu(5.0, shared_host=True)
        assert clock.wall == 5.0 and clock.cpu == 0.0

    @pytest.mark.parametrize("method", ["charge_cpu", "wait",
                                        "charge_server_cpu"])
    def test_negative_rejected(self, method):
        with pytest.raises(ValueError):
            getattr(VirtualClock(), method)(-1.0)


class TestAsync:
    def test_overlapped_completion_is_hidden(self):
        clock = VirtualClock()
        clock.begin_async(1.0)
        clock.charge_cpu(5.0)  # client overtakes the transfer
        clock.sync()
        assert clock.wall == 5.0

    def test_uncovered_completion_extends_wall(self):
        clock = VirtualClock()
        clock.begin_async(10.0)
        clock.charge_cpu(2.0)
        clock.sync()
        assert clock.wall == 10.0

    def test_latest_completion_wins(self):
        clock = VirtualClock()
        clock.begin_async(4.0)
        clock.begin_async(9.0)
        clock.sync()
        assert clock.wall == 9.0
        assert clock.pending_async == 0

    def test_sync_idempotent(self):
        clock = VirtualClock()
        clock.begin_async(1.0)
        clock.sync()
        wall = clock.wall
        clock.sync()
        assert clock.wall == wall

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            VirtualClock().begin_async(-1.0)

    def test_snapshot(self):
        clock = VirtualClock()
        clock.charge_cpu(1.0)
        clock.begin_async(2.0)
        snapshot = clock.snapshot()
        assert snapshot["cpu"] == 1.0
        assert snapshot["pending_async"] == 1


class TestThreadSafety:
    def test_concurrent_charges_sum_exactly(self):
        clock = VirtualClock()

        def worker():
            for _ in range(1000):
                clock.charge_cpu(0.001)

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert clock.cpu == pytest.approx(8.0)
        assert clock.wall == pytest.approx(8.0)


class TestCostModel:
    def test_defaults_are_positive(self):
        cost = CostModel()
        for name in ("event_dispatch", "gate_eval", "word_op",
                     "estimator_invoke", "marshal_call",
                     "marshal_per_byte", "server_dispatch",
                     "wire_overhead_factor"):
            assert getattr(cost, name) > 0

    def test_marshal_call_dominates_per_byte(self):
        """The fixed set-up must dominate small payloads for pattern
        buffering (Figure 3) to pay off."""
        cost = CostModel()
        assert cost.marshal_call > 100 * cost.marshal_per_byte
