"""Waveform recording and VCD export."""

import pytest

from repro.core import (BitConnector, Circuit, ClockGenerator, Logic,
                        PatternPrimaryInput, PrimaryOutput,
                        SimulationController, WaveformRecorder, Word,
                        WordConnector)
from repro.rtl import WordAdder


def recorded_run(recorder, *modules, **kwargs):
    controller = SimulationController(Circuit(*modules))
    controller.add_observer(recorder)
    controller.start(**kwargs)
    return controller


class TestRecording:
    def test_captures_value_changes(self):
        connector = WordConnector(8, name="data")
        source = PatternPrimaryInput(8, [1, 2, 3], connector, name="IN")
        sink = PrimaryOutput(8, connector, name="OUT")
        recorder = WaveformRecorder()
        recorded_run(recorder, source, sink)
        assert recorder.signals() == ("data",)
        history = recorder.history("data")
        assert [(t, v.value) for t, v in history] == \
            [(0.0, 1), (1.0, 2), (2.0, 3)]

    def test_filtering_by_connector(self):
        a = WordConnector(8, name="a")
        b = WordConnector(8, name="b")
        o = WordConnector(8, name="o")
        ina = PatternPrimaryInput(8, [1], a, name="INA")
        inb = PatternPrimaryInput(8, [2], b, name="INB")
        adder = WordAdder(8, a, b, o, name="ADD")
        out = PrimaryOutput(8, o, name="OUT")
        recorder = WaveformRecorder(connectors=[o])
        recorded_run(recorder, ina, inb, adder, out)
        assert recorder.signals() == ("o",)

    def test_value_at(self):
        connector = WordConnector(8, name="d")
        source = PatternPrimaryInput(8, [10, 20], connector, name="IN")
        sink = PrimaryOutput(8, connector, name="OUT")
        recorder = WaveformRecorder()
        recorded_run(recorder, source, sink)
        assert recorder.value_at("d", 0.5) == Word(10, 8)
        assert recorder.value_at("d", 1.0) == Word(20, 8)
        assert recorder.value_at("d", -1.0) is None

    def test_observer_removal(self):
        connector = WordConnector(8, name="d")
        source = PatternPrimaryInput(8, [1, 2], connector, name="IN")
        sink = PrimaryOutput(8, connector, name="OUT")
        recorder = WaveformRecorder()
        controller = SimulationController(Circuit(source, sink))
        controller.add_observer(recorder)
        controller.remove_observer(recorder)
        controller.start()
        assert recorder.changes == ()


class TestVcdExport:
    def make_trace(self):
        clk = BitConnector("clk")
        data = WordConnector(4, name="bus")
        clock = ClockGenerator(clk, period=2.0, cycles=2, name="CLK")
        source = PatternPrimaryInput(4, [5, 9], data, name="IN")
        sink_c = PrimaryOutput(1, clk, name="OC")
        sink_d = PrimaryOutput(4, data, name="OD")
        recorder = WaveformRecorder()
        recorded_run(recorder, clock, source, sink_c, sink_d)
        return recorder

    def test_header_and_declarations(self):
        vcd = self.make_trace().to_vcd(design_name="demo")
        assert "$timescale 1 ns $end" in vcd
        assert "$scope module demo $end" in vcd
        assert "$var wire 1" in vcd and "clk" in vcd
        assert "$var wire 4" in vcd and "bus" in vcd
        assert "$enddefinitions $end" in vcd

    def test_value_lines(self):
        vcd = self.make_trace().to_vcd()
        # Scalar logic values render as 0/1 + id; vectors as b... + id.
        assert "\n#0\n" in vcd
        assert "b101 " in vcd   # 5
        assert "b1001 " in vcd  # 9
        lines = vcd.splitlines()
        tick_lines = [line for line in lines if line.startswith("#")]
        ticks = [int(line[1:]) for line in tick_lines]
        assert ticks == sorted(ticks)

    def test_unknown_word_renders_x(self):
        recorder = WaveformRecorder()
        connector = WordConnector(4, name="w")
        source = PatternPrimaryInput(4, [3], connector, name="IN")
        sink = PrimaryOutput(4, connector, name="OUT")
        controller = SimulationController(Circuit(source, sink))
        controller.add_observer(recorder)
        controller.prime(connector, Word.unknown(4))
        controller.start()
        from repro.core.wave import _vcd_value
        assert _vcd_value(Word.unknown(4), "!") == "bxxxx !"
        assert _vcd_value(Logic.X, "!") == "x!"

    def test_write_vcd(self, tmp_path):
        recorder = self.make_trace()
        path = tmp_path / "trace.vcd"
        with open(path, "w") as handle:
            recorder.write_vcd(handle)
        assert path.read_text().startswith("$date")

    def test_identifier_generation(self):
        from repro.core.wave import _vcd_identifier
        seen = {_vcd_identifier(i) for i in range(200)}
        assert len(seen) == 200  # all unique
