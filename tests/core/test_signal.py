"""Unit and property tests for the four-valued logic and word domain."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.signal import (Logic, Word, bits_from_int,
                               bits_from_string, bits_to_string,
                               int_from_bits, logic_and, logic_buf,
                               logic_mux, logic_nand, logic_nor, logic_not,
                               logic_or, logic_xnor, logic_xor, toggles)

KNOWN = [Logic.ZERO, Logic.ONE]
ALL = [Logic.ZERO, Logic.ONE, Logic.X, Logic.Z]


class TestLogicBasics:
    def test_from_bool(self):
        assert Logic.from_bool(True) is Logic.ONE
        assert Logic.from_bool(False) is Logic.ZERO

    @pytest.mark.parametrize("char,value", [
        ("0", Logic.ZERO), ("1", Logic.ONE), ("x", Logic.X),
        ("X", Logic.X), ("z", Logic.Z), ("Z", Logic.Z)])
    def test_from_char(self, char, value):
        assert Logic.from_char(char) is value

    def test_from_char_rejects_junk(self):
        with pytest.raises(ValueError):
            Logic.from_char("q")

    def test_is_known(self):
        assert Logic.ZERO.is_known and Logic.ONE.is_known
        assert not Logic.X.is_known and not Logic.Z.is_known

    def test_to_bool(self):
        assert Logic.ONE.to_bool() is True
        assert Logic.ZERO.to_bool() is False
        with pytest.raises(ValueError):
            Logic.X.to_bool()
        with pytest.raises(ValueError):
            Logic.Z.to_bool()

    def test_driven_degrades_z(self):
        assert Logic.Z.driven() is Logic.X
        for value in (Logic.ZERO, Logic.ONE, Logic.X):
            assert value.driven() is value

    def test_to_char_roundtrip(self):
        for value in ALL:
            assert Logic.from_char(value.to_char()) is value.driven() or \
                value is Logic.Z


class TestLogicGates:
    @pytest.mark.parametrize("a", KNOWN)
    @pytest.mark.parametrize("b", KNOWN)
    def test_known_truth_tables(self, a, b):
        ab, bb = bool(a), bool(b)
        assert logic_and(a, b) is Logic.from_bool(ab and bb)
        assert logic_or(a, b) is Logic.from_bool(ab or bb)
        assert logic_xor(a, b) is Logic.from_bool(ab != bb)
        assert logic_nand(a, b) is Logic.from_bool(not (ab and bb))
        assert logic_nor(a, b) is Logic.from_bool(not (ab or bb))
        assert logic_xnor(a, b) is Logic.from_bool(ab == bb)

    def test_not_and_buf(self):
        assert logic_not(Logic.ZERO) is Logic.ONE
        assert logic_not(Logic.ONE) is Logic.ZERO
        assert logic_not(Logic.X) is Logic.X
        assert logic_not(Logic.Z) is Logic.X
        assert logic_buf(Logic.ONE) is Logic.ONE
        assert logic_buf(Logic.Z) is Logic.X

    def test_controlling_values_dominate_x(self):
        assert logic_and(Logic.ZERO, Logic.X) is Logic.ZERO
        assert logic_or(Logic.ONE, Logic.X) is Logic.ONE
        assert logic_nand(Logic.ZERO, Logic.X) is Logic.ONE
        assert logic_nor(Logic.ONE, Logic.X) is Logic.ZERO

    def test_x_poisons_without_controlling_value(self):
        assert logic_and(Logic.ONE, Logic.X) is Logic.X
        assert logic_or(Logic.ZERO, Logic.X) is Logic.X
        assert logic_xor(Logic.ONE, Logic.X) is Logic.X
        assert logic_xnor(Logic.ZERO, Logic.X) is Logic.X

    def test_variadic_gates(self):
        assert logic_and(*[Logic.ONE] * 5) is Logic.ONE
        assert logic_and(Logic.ONE, Logic.ONE, Logic.ZERO) is Logic.ZERO
        assert logic_or(*[Logic.ZERO] * 4) is Logic.ZERO
        assert logic_xor(Logic.ONE, Logic.ONE, Logic.ONE) is Logic.ONE

    def test_mux(self):
        assert logic_mux(Logic.ZERO, Logic.ONE, Logic.ZERO) is Logic.ONE
        assert logic_mux(Logic.ONE, Logic.ONE, Logic.ZERO) is Logic.ZERO
        # Unknown select: known only when both data inputs agree.
        assert logic_mux(Logic.X, Logic.ONE, Logic.ONE) is Logic.ONE
        assert logic_mux(Logic.X, Logic.ONE, Logic.ZERO) is Logic.X

    @given(st.lists(st.sampled_from(KNOWN), min_size=1, max_size=6))
    def test_demorgan_on_known_values(self, values):
        assert logic_nand(*values) is logic_or(
            *[logic_not(v) for v in values])
        assert logic_nor(*values) is logic_and(
            *[logic_not(v) for v in values])

    @given(st.lists(st.sampled_from(ALL), min_size=1, max_size=6))
    def test_gates_never_return_z(self, values):
        for gate in (logic_and, logic_or, logic_xor, logic_nand,
                     logic_nor, logic_xnor):
            assert gate(*values) is not Logic.Z


class TestBitVectors:
    @given(st.integers(min_value=0, max_value=2**20 - 1))
    def test_int_roundtrip(self, value):
        assert int_from_bits(bits_from_int(value, 20)) == value

    def test_bits_from_int_validation(self):
        with pytest.raises(ValueError):
            bits_from_int(1, 0)
        with pytest.raises(ValueError):
            bits_from_int(-1, 4)

    def test_string_roundtrip(self):
        assert bits_to_string(bits_from_string("10X1")) == "10X1"
        assert bits_from_string("01") == (Logic.ONE, Logic.ZERO)

    def test_int_from_bits_rejects_unknown(self):
        with pytest.raises(ValueError):
            int_from_bits((Logic.ONE, Logic.X))


class TestWord:
    def test_masking(self):
        assert Word(0x1FF, 8).value == 0xFF
        assert Word(-1, 4).value == 0xF

    def test_width_validation(self):
        with pytest.raises(ValueError):
            Word(1, 0)

    def test_unknown(self):
        unknown = Word.unknown(8)
        assert not unknown.known
        with pytest.raises(ValueError):
            _ = unknown.value
        assert unknown.to_bits() == tuple([Logic.X] * 8)

    @given(st.integers(0, 255), st.integers(0, 255))
    def test_arithmetic_matches_ints(self, a, b):
        wa, wb = Word(a, 8), Word(b, 8)
        assert (wa + wb).value == (a + b) % 256
        assert (wa - wb).value == (a - b) % 256
        assert (wa * wb).value == a * b
        assert (wa * wb).width == 16
        assert (wa & wb).value == a & b
        assert (wa | wb).value == a | b
        assert (wa ^ wb).value == a ^ b
        assert (~wa).value == (~a) % 256

    def test_unknown_propagates(self):
        known = Word(5, 8)
        unknown = Word.unknown(8)
        for op in (lambda: known + unknown, lambda: unknown * known,
                   lambda: known & unknown, lambda: ~unknown):
            assert not op().known

    @given(st.integers(0, 2**12 - 1))
    def test_bits_roundtrip(self, value):
        word = Word(value, 12)
        assert Word.from_bits(word.to_bits()) == word

    def test_from_bits_with_x_is_unknown(self):
        assert not Word.from_bits((Logic.ONE, Logic.X)).known

    def test_resize(self):
        assert Word(0xAB, 8).resize(4).value == 0xB
        assert Word(0xB, 4).resize(8).value == 0xB
        assert not Word.unknown(4).resize(8).known

    def test_equality_and_hash(self):
        assert Word(5, 8) == Word(5, 8)
        assert Word(5, 8) != Word(5, 9)
        assert Word(5, 8) != Word.unknown(8)
        assert hash(Word(5, 8)) == hash(Word(5, 8))


class TestToggles:
    def test_logic_toggles(self):
        assert toggles(Logic.ZERO, Logic.ONE) == 1
        assert toggles(Logic.ONE, Logic.ONE) == 0
        assert toggles(Logic.X, Logic.ONE) == 0

    @given(st.integers(0, 255), st.integers(0, 255))
    def test_word_toggles_is_hamming(self, a, b):
        assert toggles(Word(a, 8), Word(b, 8)) == bin(a ^ b).count("1")

    def test_unknown_words_never_toggle(self):
        assert toggles(Word.unknown(8), Word(3, 8)) == 0

    def test_mixed_types(self):
        assert toggles(Logic.ONE, Word(1, 4)) == 0
