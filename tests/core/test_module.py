"""ModuleSkeleton: ports, state LUTs, dispatch, estimator tables."""

import pytest

from repro.core import (Circuit, CompositeModule, ConnectionError_,
                        ControlToken, DesignError, Logic, ModuleSkeleton,
                        PortDirection, SelfTriggerToken, SignalToken,
                        SimulationController, SimulationError,
                        WordConnector, Word, connect)
from repro.estimation import ConstantEstimator


class Recorder(ModuleSkeleton):
    """Counts which hooks fire."""

    def __init__(self, name=None):
        super().__init__(name=name)
        self.seen = []

    def process_input_event(self, token, ctx):
        self.seen.append(("signal", token.value))

    def process_self_trigger(self, token, ctx):
        self.seen.append(("trigger", token.tag))

    def process_control_token(self, token, ctx):
        self.seen.append(("control", token.command))


@pytest.fixture
def wired():
    source = ModuleSkeleton("src")
    sink = Recorder("dst")
    out = source.add_port("o", PortDirection.OUT, 8)
    inp = sink.add_port("i", PortDirection.IN, 8)
    connector = connect(out, inp)
    circuit = Circuit(source, sink)
    controller = SimulationController(circuit)
    return source, sink, connector, controller


class TestPorts:
    def test_duplicate_port_rejected(self):
        module = ModuleSkeleton("m")
        module.add_port("p", PortDirection.IN)
        with pytest.raises(ConnectionError_):
            module.add_port("p", PortDirection.OUT)

    def test_unknown_port_lookup(self):
        with pytest.raises(ConnectionError_):
            ModuleSkeleton("m").port("nope")

    def test_port_classification(self):
        module = ModuleSkeleton("m")
        module.add_port("i", PortDirection.IN)
        module.add_port("o", PortDirection.OUT)
        module.add_port("io", PortDirection.INOUT)
        assert {p.name for p in module.input_ports()} == {"i", "io"}
        assert {p.name for p in module.output_ports()} == {"o", "io"}


class TestEmitAndRead:
    def test_emit_delivers_signal_token(self, wired):
        source, sink, connector, controller = wired
        source.emit("o", Word(42, 8), controller.context)
        controller.start()
        assert sink.seen == [("signal", Word(42, 8))]
        assert connector.get_value(
            controller.scheduler.scheduler_id) == Word(42, 8)

    def test_emit_from_input_port_rejected(self, wired):
        _source, sink, _connector, controller = wired
        with pytest.raises(SimulationError):
            sink.emit("i", Word(1, 8), controller.context)

    def test_emit_unconnected_output_is_silent(self):
        module = ModuleSkeleton("m")
        module.add_port("o", PortDirection.OUT, 4)
        circuit = Circuit(module)
        controller = SimulationController(circuit)
        module.emit("o", Word(3, 4), controller.context)  # no error

    def test_read_unconnected_port_rejected(self, wired):
        source, _sink, _connector, controller = wired
        lone = ModuleSkeleton("lone")
        lone.add_port("i", PortDirection.IN)
        with pytest.raises(SimulationError):
            lone.read("i", controller.context)

    def test_emit_with_delay(self, wired):
        source, sink, _connector, controller = wired
        source.emit("o", Word(1, 8), controller.context, delay=3.0)
        stats = controller.start()
        assert stats.end_time == 3.0


class TestDispatch:
    def test_all_token_kinds_dispatch(self, wired):
        source, sink, _connector, controller = wired
        ctx = controller.context
        port = sink.port("i")
        sink.receive(SignalToken(sink, port, Word(7, 8)), ctx)
        sink.receive(SelfTriggerToken(sink, tag="tick"), ctx)
        sink.receive(ControlToken(sink, "reset"), ctx)
        assert [kind for kind, _ in sink.seen] == \
            ["signal", "trigger", "control"]

    def test_override_takes_precedence(self, wired):
        _source, sink, _connector, controller = wired
        hits = []
        controller.override_handler(sink,
                                    lambda m, t, c: hits.append(t.kind))
        sink.receive(ControlToken(sink, "reset"), controller.context)
        assert hits == ["ControlToken"] and sink.seen == []
        controller.clear_override(sink)
        sink.receive(ControlToken(sink, "reset"), controller.context)
        assert sink.seen == [("control", "reset")]


class TestStateLUT:
    def test_state_is_per_scheduler(self, wired):
        _source, sink, _connector, controller = wired
        other = SimulationController(controller.circuit)
        sink.state(controller.context)["k"] = 1
        sink.state(other.context)["k"] = 2
        assert sink.state(controller.context)["k"] == 1
        assert sink.state(other.context)["k"] == 2

    def test_clear_state(self, wired):
        _source, sink, _connector, controller = wired
        sink.state(controller.context)["k"] = 1
        sink.clear_state(controller.scheduler.scheduler_id)
        assert "k" not in sink.state(controller.context)


class TestEstimatorTables:
    def test_candidates_and_binding(self):
        module = ModuleSkeleton("m")
        est_a = ConstantEstimator("area", 10.0, name="a")
        est_b = ConstantEstimator("area", 12.0, name="b")
        module.add_estimator(est_a)
        module.add_estimator(est_b)
        assert module.candidate_estimators("area") == (est_a, est_b)
        assert module.estimated_parameters() == ("area",)
        setup = object()
        module.bind_estimator(setup, "area", est_b)
        assert module.bound_estimator(setup, "area") is est_b
        assert module.bound_estimator(object(), "area") is None
        module.clear_setup(setup)
        assert module.bound_estimator(setup, "area") is None


class TestComposite:
    def build(self):
        inner_a = Recorder("inner_a")
        inner_a.add_port("i", PortDirection.IN, 4)
        inner_b = ModuleSkeleton("inner_b")
        inner_b.add_port("o", PortDirection.OUT, 4)
        composite = CompositeModule(inner_a, inner_b, name="comp")
        composite.add_alias("in", inner_a.port("i"))
        composite.add_alias("out", inner_b.port("o"))
        return inner_a, inner_b, composite

    def test_alias_resolves_to_inner_port(self):
        inner_a, _inner_b, composite = self.build()
        assert composite.port("in") is inner_a.port("i")

    def test_flattening(self):
        inner_a, inner_b, composite = self.build()
        assert set(composite.submodules()) == {inner_a, inner_b}
        circuit = Circuit(composite)
        assert set(circuit.modules) == {inner_a, inner_b}

    def test_nested_composites_flatten(self):
        inner_a, inner_b, composite = self.build()
        outer = CompositeModule(composite, name="outer")
        assert set(outer.submodules()) == {inner_a, inner_b}

    def test_alias_validation(self):
        _ia, _ib, composite = self.build()
        foreign = ModuleSkeleton("foreign")
        foreign_port = foreign.add_port("p", PortDirection.IN)
        with pytest.raises(DesignError):
            composite.add_alias("bad", foreign_port)
        with pytest.raises(DesignError):
            composite.add_alias("in", composite.port("in"))

    def test_composite_never_receives_tokens(self):
        _ia, _ib, composite = self.build()
        circuit = Circuit(composite)
        controller = SimulationController(circuit)
        with pytest.raises(SimulationError):
            composite.receive(ControlToken(composite, "x"),
                              controller.context)

    def test_composite_needs_modules(self):
        with pytest.raises(DesignError):
            CompositeModule(name="empty")

    def test_connect_through_composite_and_simulate(self):
        inner_a, _inner_b, composite = self.build()
        driver = ModuleSkeleton("driver")
        out = driver.add_port("o", PortDirection.OUT, 4)
        connector = WordConnector(4)
        connector.attach(out)
        connector.attach(composite.port("in"))
        circuit = Circuit(driver, composite)
        controller = SimulationController(circuit)
        driver.emit("o", Word(9, 4), controller.context)
        controller.start()
        assert inner_a.seen == [("signal", Word(9, 4))]
