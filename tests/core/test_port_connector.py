"""Ports and point-to-point connectors."""

import pytest

from repro.core import (BitConnector, ConnectionError_, Logic,
                        ModuleSkeleton, Port, PortDirection,
                        WidthMismatchError, Word, WordConnector, connect)


def make_port(name="p", direction=PortDirection.IN, width=1):
    module = ModuleSkeleton(name=f"m_{name}")
    return module.add_port(name, direction, width)


class TestPort:
    def test_direction_capabilities(self):
        assert PortDirection.IN.can_read and not PortDirection.IN.can_write
        assert PortDirection.OUT.can_write and not PortDirection.OUT.can_read
        assert PortDirection.INOUT.can_read and PortDirection.INOUT.can_write

    def test_width_validation(self):
        with pytest.raises(ConnectionError_):
            make_port(width=0)

    def test_full_name(self):
        port = make_port("data")
        assert port.full_name == "m_data.data"
        unbound = Port("q", PortDirection.OUT)
        assert "<unbound>" in unbound.full_name

    def test_peer(self):
        a = make_port("a", PortDirection.OUT)
        b = make_port("b", PortDirection.IN)
        assert a.peer() is None
        connect(a, b)
        assert a.peer() is b and b.peer() is a


class TestConnector:
    def test_point_to_point_limit(self):
        connector = BitConnector()
        connector.attach(make_port("a", PortDirection.OUT))
        connector.attach(make_port("b"))
        with pytest.raises(ConnectionError_, match="point-to-point"):
            connector.attach(make_port("c"))

    def test_double_attach_same_port(self):
        connector = BitConnector()
        port = make_port("a")
        connector.attach(port)
        with pytest.raises(ConnectionError_, match="already connected"):
            BitConnector().attach(port)

    def test_width_check_on_attach(self):
        with pytest.raises(WidthMismatchError):
            WordConnector(8).attach(make_port("a", width=4))

    def test_detach(self):
        connector = BitConnector()
        port = make_port("a")
        connector.attach(port)
        connector.detach(port)
        assert not port.is_connected
        with pytest.raises(ConnectionError_):
            connector.detach(port)

    def test_double_attach_same_port_same_connector(self):
        connector = BitConnector()
        port = make_port("a")
        connector.attach(port)
        with pytest.raises(ConnectionError_, match="already connected"):
            connector.attach(port)
        # The failed attach must not duplicate the endpoint.
        assert connector.endpoints == (port,)

    def test_detach_never_attached_port(self):
        connector = BitConnector()
        with pytest.raises(ConnectionError_, match="is not attached"):
            connector.detach(make_port("a"))

    def test_detach_port_attached_elsewhere(self):
        here, elsewhere = BitConnector(), BitConnector()
        port = make_port("a")
        elsewhere.attach(port)
        with pytest.raises(ConnectionError_, match="is not attached"):
            here.detach(port)
        assert port.connector is elsewhere

    def test_reattach_after_detach(self):
        connector = BitConnector()
        port = make_port("a")
        connector.attach(port)
        connector.detach(port)
        connector.attach(port)
        assert port.connector is connector
        assert connector.endpoints == (port,)

    def test_failed_attach_leaves_connector_unchanged(self):
        connector = BitConnector()
        a, b = make_port("a", PortDirection.OUT), make_port("b")
        connector.attach(a)
        connector.attach(b)
        before = connector.endpoints
        with pytest.raises(ConnectionError_):
            connector.attach(make_port("c"))
        assert connector.endpoints == before

    def test_failed_width_attach_leaves_port_unconnected(self):
        port = make_port("a", width=4)
        with pytest.raises(WidthMismatchError):
            WordConnector(8).attach(port)
        assert not port.is_connected
        assert port.connector is None

    def test_detach_leaves_peer_attached(self):
        connector = BitConnector()
        a, b = make_port("a", PortDirection.OUT), make_port("b")
        connector.attach(a)
        connector.attach(b)
        connector.detach(a)
        assert connector.endpoints == (b,)
        assert b.connector is connector and a.connector is None
        assert connector.peer_of(b) is None

    def test_default_values(self):
        assert BitConnector().default_value() is Logic.X
        default = WordConnector(8).default_value()
        assert not default.known and default.width == 8

    def test_value_type_checks(self):
        bit = BitConnector()
        with pytest.raises(ConnectionError_):
            bit.set_value(1, Word(1, 1))
        word = WordConnector(8)
        with pytest.raises(ConnectionError_):
            word.set_value(1, Logic.ONE)
        with pytest.raises(WidthMismatchError):
            word.set_value(1, Word(1, 4))

    def test_per_scheduler_values_are_isolated(self):
        connector = WordConnector(8)
        connector.set_value(1, Word(11, 8))
        connector.set_value(2, Word(22, 8))
        assert connector.get_value(1) == Word(11, 8)
        assert connector.get_value(2) == Word(22, 8)
        # A third scheduler sees the default.
        assert not connector.get_value(3).known

    def test_clear(self):
        connector = BitConnector()
        connector.set_value(1, Logic.ONE)
        connector.clear(1)
        assert connector.get_value(1) is Logic.X
        connector.clear(99)  # clearing an unknown scheduler is a no-op


class TestConnectHelper:
    def test_auto_bit_connector(self):
        a = make_port("a", PortDirection.OUT)
        b = make_port("b")
        connector = connect(a, b)
        assert isinstance(connector, BitConnector)

    def test_auto_word_connector(self):
        a = make_port("a", PortDirection.OUT, width=16)
        b = make_port("b", width=16)
        connector = connect(a, b)
        assert isinstance(connector, WordConnector)
        assert connector.width == 16

    def test_width_mismatch(self):
        with pytest.raises(WidthMismatchError):
            connect(make_port("a", width=4), make_port("b", width=8))

    def test_explicit_connector(self):
        shared = WordConnector(8)
        a = make_port("a", PortDirection.OUT, width=8)
        b = make_port("b", width=8)
        assert connect(a, b, shared) is shared
        assert set(shared.endpoints) == {a, b}
