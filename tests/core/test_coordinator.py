"""Coordinating many cooperating schedulers."""

import pytest

from repro.core import (Circuit, PatternPrimaryInput, PrimaryOutput,
                        RunConfig, SimulationCoordinator, SimulationError,
                        WordConnector)
from repro.estimation import (AREA, ByName, ConstantEstimator,
                              SetupController)


def build_circuit(patterns=10):
    connector = WordConnector(8)
    source = PatternPrimaryInput(8, list(range(patterns)), connector,
                                 name="IN")
    source.add_estimator(ConstantEstimator(AREA.name, 7.0, name="a7"))
    source.add_estimator(ConstantEstimator(AREA.name, 9.0, name="a9"))
    sink = PrimaryOutput(8, connector, name="OUT")
    return Circuit(source, sink), sink


class TestCoordinator:
    def test_concurrent_runs_complete(self):
        circuit, sink = build_circuit()
        coordinator = SimulationCoordinator(circuit)
        results = coordinator.launch([RunConfig("r1"), RunConfig("r2"),
                                      RunConfig("r3")])
        assert set(results) == {"r1", "r2", "r3"}
        for name in results:
            controller = coordinator.controller(name)
            trace = sink.trace(controller.context)
            assert [v.value for _t, v in trace] == list(range(10))

    def test_per_run_setups(self):
        circuit, _sink = build_circuit(patterns=3)
        setup_a = SetupController(name="sa")
        setup_a.set(AREA, ByName("a7"))
        setup_a.apply(circuit)
        setup_b = SetupController(name="sb")
        setup_b.set(AREA, ByName("a9"))
        setup_b.apply(circuit)
        coordinator = SimulationCoordinator(circuit)
        coordinator.launch([RunConfig("a", setup=setup_a),
                            RunConfig("b", setup=setup_b)])
        assert setup_a.results.series("IN", AREA.name) == [7.0] * 3
        assert setup_b.results.series("IN", AREA.name) == [9.0] * 3

    def test_bounded_runs(self):
        circuit, sink = build_circuit(patterns=10)
        coordinator = SimulationCoordinator(circuit)
        coordinator.launch([RunConfig("short", max_time=3.0),
                            RunConfig("full")])
        short = coordinator.controller("short")
        full = coordinator.controller("full")
        assert len(sink.trace(short.context)) == 4
        assert len(sink.trace(full.context)) == 10

    def test_duplicate_names_rejected(self):
        circuit, _sink = build_circuit()
        coordinator = SimulationCoordinator(circuit)
        with pytest.raises(SimulationError, match="unique"):
            coordinator.launch([RunConfig("x"), RunConfig("x")])

    def test_empty_launch_rejected(self):
        circuit, _sink = build_circuit()
        with pytest.raises(SimulationError):
            SimulationCoordinator(circuit).launch([])

    def test_unknown_controller(self):
        circuit, _sink = build_circuit()
        coordinator = SimulationCoordinator(circuit)
        with pytest.raises(SimulationError):
            coordinator.controller("ghost")

    def test_teardown_clears_all_runs(self):
        circuit, sink = build_circuit(patterns=2)
        coordinator = SimulationCoordinator(circuit)
        coordinator.launch([RunConfig("r1"), RunConfig("r2")])
        coordinator.teardown()
        for name in ("r1", "r2"):
            controller = coordinator.controller(name)
            assert sink.trace(controller.context) == []

    def test_independent_virtual_clocks(self):
        circuit, _sink = build_circuit()
        coordinator = SimulationCoordinator(circuit)
        results = coordinator.launch([RunConfig("r1"),
                                      RunConfig("r2", max_events=3)])
        assert results["r1"].events > results["r2"].events
        clock_a = coordinator.controller("r1").clock
        clock_b = coordinator.controller("r2").clock
        assert clock_a is not clock_b
        assert clock_a.cpu > clock_b.cpu
