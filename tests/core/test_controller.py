"""Simulation controllers: the event loop, instants, concurrency."""

import pytest

from repro.core import (Circuit, Logic, ModuleSkeleton,
                        PatternPrimaryInput, PortDirection, PrimaryOutput,
                        SimulationController, Word, WordConnector,
                        connect)
from repro.estimation import (AVERAGE_POWER, ByName, ConstantEstimator,
                              SetupController)


def simple_pipeline(patterns):
    connector = WordConnector(8)
    source = PatternPrimaryInput(8, patterns, connector, name="IN")
    sink = PrimaryOutput(8, connector, name="OUT")
    return Circuit(source, sink), source, sink


class TestEventLoop:
    def test_stats(self):
        circuit, _source, sink = simple_pipeline([1, 2, 3])
        controller = SimulationController(circuit)
        stats = controller.start()
        # 3 self-triggers + 3 signal deliveries
        assert stats.events == 6
        assert stats.instants == 3
        assert stats.end_time == 2.0
        assert [v.value for _t, v in sink.trace(controller.context)] == \
            [1, 2, 3]

    def test_max_time_bound(self):
        circuit, _source, sink = simple_pipeline(list(range(10)))
        controller = SimulationController(circuit)
        controller.start(max_time=4.0)
        assert len(sink.trace(controller.context)) == 5

    def test_max_events_bound(self):
        circuit, _source, _sink = simple_pipeline(list(range(10)))
        controller = SimulationController(circuit)
        stats = controller.start(max_events=4)
        assert stats.events == 4

    def test_initialize_runs_once(self):
        circuit, _source, sink = simple_pipeline([5])
        controller = SimulationController(circuit)
        controller.initialize()
        controller.initialize()
        controller.start()
        assert len(sink.trace(controller.context)) == 1

    def test_virtual_cpu_charged(self):
        circuit, _source, _sink = simple_pipeline([1, 2])
        controller = SimulationController(circuit)
        stats = controller.start()
        assert stats.cpu > 0
        assert controller.clock.cpu == pytest.approx(stats.cpu)

    def test_teardown_clears_state(self):
        circuit, _source, sink = simple_pipeline([1])
        controller = SimulationController(circuit)
        controller.start()
        assert sink.trace(controller.context)
        controller.teardown()
        assert sink.trace(controller.context) == []


class TestPrimeAndInject:
    def test_prime_sets_connector_value(self):
        circuit, _source, _sink = simple_pipeline([1])
        controller = SimulationController(circuit)
        connector = circuit.connectors()[0]
        controller.prime(connector, Word(99, 8))
        assert connector.get_value(
            controller.scheduler.scheduler_id) == Word(99, 8)

    def test_inject_reaches_peer(self):
        a = ModuleSkeleton("a")
        out = a.add_port("o", PortDirection.OUT, 8)
        connector = WordConnector(8)
        connector.attach(out)
        sink = PrimaryOutput(8, connector, name="OUT")
        circuit = Circuit(a, sink)
        controller = SimulationController(circuit)
        controller.inject(out, Word(17, 8))
        controller.start()
        assert sink.last_value(controller.context) == Word(17, 8)


class TestEstimationSweep:
    def make(self, patterns):
        circuit, source, sink = simple_pipeline(patterns)
        estimator = ConstantEstimator(AVERAGE_POWER.name, 2.5,
                                      name="const")
        source.add_estimator(estimator)
        setup = SetupController(name="sweep")
        setup.set(AVERAGE_POWER, ByName("const"))
        setup.apply(circuit)
        return circuit, setup

    def test_one_estimate_per_instant(self):
        circuit, setup = self.make([1, 2, 3, 4])
        controller = SimulationController(circuit, setup=setup)
        controller.start()
        assert len(setup.results.series("IN", AVERAGE_POWER.name)) == 4

    def test_no_setup_no_records(self):
        circuit, setup = self.make([1, 2])
        controller = SimulationController(circuit)  # no setup passed
        controller.start()
        assert setup.results.records == ()


class TestConcurrentControllers:
    def test_threaded_runs_do_not_interfere(self):
        """Two controllers replay the same design concurrently; each
        observes its complete, private trace."""
        circuit, _source, sink = simple_pipeline(list(range(50)))
        controllers = [SimulationController(circuit, name=f"t{i}")
                       for i in range(4)]
        threads = [controller.start_async()
                   for controller in controllers]
        for thread in threads:
            thread.join(timeout=30)
        for controller in controllers:
            trace = sink.trace(controller.context)
            assert [v.value for _t, v in trace] == list(range(50))

    def test_sequential_reuse_without_reset(self):
        circuit, _source, sink = simple_pipeline([7, 8])
        first = SimulationController(circuit)
        first.start()
        second = SimulationController(circuit)
        second.start()
        assert sink.trace(first.context) == sink.trace(second.context)
        assert first.scheduler.scheduler_id != \
            second.scheduler.scheduler_id
