"""Standard library modules: sources, sinks, registers, clocks, fanout."""

import pytest

from repro.core import (BitConnector, Circuit, ClockGenerator, Delay,
                        DesignError, Fanout, Logic, PatternPrimaryInput,
                        PrimaryOutput, RandomPrimaryInput, Register,
                        SimulationController, Word, WordConnector)


def run(circuit, **kwargs):
    controller = SimulationController(circuit)
    controller.start(**kwargs)
    return controller


class TestPatternPrimaryInput:
    def test_emits_sequence_at_period(self):
        connector = WordConnector(8)
        source = PatternPrimaryInput(8, [10, 20, 30], connector,
                                     period=2.0, name="IN")
        sink = PrimaryOutput(8, connector, name="OUT")
        controller = run(Circuit(source, sink))
        trace = sink.trace(controller.context)
        assert [(t, v.value) for t, v in trace] == \
            [(0.0, 10), (2.0, 20), (4.0, 30)]

    def test_single_bit_coercion(self):
        connector = BitConnector()
        source = PatternPrimaryInput(1, [0, 1, Logic.ONE, Word(0, 4)],
                                     connector, name="IN")
        assert source.patterns == (Logic.ZERO, Logic.ONE, Logic.ONE,
                                   Logic.ZERO)

    def test_word_coercion_masks(self):
        connector = WordConnector(4)
        source = PatternPrimaryInput(4, [0x1F], connector, name="IN")
        assert source.patterns[0] == Word(0xF, 4)

    def test_drives_multiple_connectors(self):
        c1, c2 = WordConnector(8), WordConnector(8)
        source = PatternPrimaryInput(8, [5], c1, c2, name="IN")
        s1 = PrimaryOutput(8, c1, name="O1")
        s2 = PrimaryOutput(8, c2, name="O2")
        controller = run(Circuit(source, s1, s2))
        assert s1.last_value(controller.context) == Word(5, 8)
        assert s2.last_value(controller.context) == Word(5, 8)

    def test_validation(self):
        with pytest.raises(DesignError):
            PatternPrimaryInput(8, [1])  # no connector
        with pytest.raises(DesignError):
            PatternPrimaryInput(8, [1], WordConnector(8), period=0.0)

    def test_empty_pattern_list_is_inert(self):
        connector = WordConnector(8)
        source = PatternPrimaryInput(8, [], connector, name="IN")
        sink = PrimaryOutput(8, connector, name="OUT")
        controller = run(Circuit(source, sink))
        assert sink.trace(controller.context) == []


class TestRandomPrimaryInput:
    def test_deterministic_from_seed(self):
        a = RandomPrimaryInput(16, WordConnector(16), patterns=10, seed=4)
        b = RandomPrimaryInput(16, WordConnector(16), patterns=10, seed=4)
        c = RandomPrimaryInput(16, WordConnector(16), patterns=10, seed=5)
        assert a.patterns == b.patterns
        assert a.patterns != c.patterns

    def test_values_fit_width(self):
        source = RandomPrimaryInput(4, WordConnector(4), patterns=50,
                                    seed=0)
        assert all(p.value < 16 for p in source.patterns)


class TestRegister:
    def test_transparent_mode(self):
        d, q = WordConnector(8), WordConnector(8)
        source = PatternPrimaryInput(8, [1, 2], d, name="IN")
        register = Register(8, d, q, name="REG")
        sink = PrimaryOutput(8, q, name="OUT")
        controller = run(Circuit(source, register, sink))
        assert [v.value for _t, v in sink.trace(controller.context)] == \
            [1, 2]
        assert register.stored_value(controller.context) == Word(2, 8)

    def test_transparent_with_delay(self):
        d, q = WordConnector(8), WordConnector(8)
        source = PatternPrimaryInput(8, [1], d, name="IN")
        register = Register(8, d, q, delay=0.5, name="REG")
        sink = PrimaryOutput(8, q, name="OUT")
        controller = run(Circuit(source, register, sink))
        assert sink.trace(controller.context)[0][0] == 0.5

    def test_clocked_mode_samples_on_rising_edge(self):
        d, q, clk = WordConnector(8), WordConnector(8), BitConnector()
        source = PatternPrimaryInput(8, [11, 22, 33], d, name="IN")
        clock = ClockGenerator(clk, period=2.0, cycles=3, start_high=False,
                               name="CLK")
        register = Register(8, d, q, clock=clk, name="REG")
        sink = PrimaryOutput(8, q, name="OUT")
        controller = run(Circuit(source, clock, register, sink))
        values = [v.value for _t, v in sink.trace(controller.context)]
        # Rising edges at t=1,3,5 sample the pattern current at the time.
        assert values == [22, 33, 33]

    def test_clocked_ignores_data_until_edge(self):
        d, q, clk = WordConnector(8), WordConnector(8), BitConnector()
        source = PatternPrimaryInput(8, [9], d, name="IN")
        register = Register(8, d, q, clock=clk, name="REG")
        sink = PrimaryOutput(8, q, name="OUT")
        controller = run(Circuit(source, register, sink))
        assert sink.trace(controller.context) == []

    def test_negative_delay_rejected(self):
        with pytest.raises(DesignError):
            Register(8, WordConnector(8), WordConnector(8), delay=-1)


class TestClockGenerator:
    def test_edge_stream(self):
        clk = BitConnector()
        clock = ClockGenerator(clk, period=2.0, cycles=2, name="CLK")
        sink = PrimaryOutput(1, clk, name="OUT")
        controller = run(Circuit(clock, sink))
        trace = sink.trace(controller.context)
        assert [(t, v) for t, v in trace] == [
            (0.0, Logic.ONE), (1.0, Logic.ZERO),
            (2.0, Logic.ONE), (3.0, Logic.ZERO)]

    def test_free_running_clock_respects_max_time(self):
        clk = BitConnector()
        clock = ClockGenerator(clk, period=2.0, name="CLK")
        sink = PrimaryOutput(1, clk, name="OUT")
        circuit = Circuit(clock, sink)
        controller = SimulationController(circuit)
        controller.start(max_time=9.0)
        assert len(sink.trace(controller.context)) == 10

    def test_period_validation(self):
        with pytest.raises(DesignError):
            ClockGenerator(BitConnector(), period=0)


class TestFanoutAndDelay:
    def test_fanout_replicates_with_per_branch_delays(self):
        src = BitConnector()
        b0, b1 = BitConnector(), BitConnector()
        source = PatternPrimaryInput(1, [1], src, name="IN")
        fanout = Fanout(1, src, [b0, b1], delays=[0.0, 0.5], name="FAN")
        s0 = PrimaryOutput(1, b0, name="O0")
        s1 = PrimaryOutput(1, b1, name="O1")
        controller = run(Circuit(source, fanout, s0, s1))
        assert s0.trace(controller.context) == [(0.0, Logic.ONE)]
        assert s1.trace(controller.context) == [(0.5, Logic.ONE)]

    def test_fanout_validation(self):
        src = BitConnector()
        with pytest.raises(DesignError):
            Fanout(1, src, [])
        with pytest.raises(DesignError):
            Fanout(1, BitConnector(), [BitConnector()], delays=[1, 2])
        with pytest.raises(DesignError):
            Fanout(1, BitConnector(), [BitConnector()], delays=[-1.0])

    def test_delay_module(self):
        a, b = WordConnector(8), WordConnector(8)
        source = PatternPrimaryInput(8, [3], a, name="IN")
        delay = Delay(8, a, b, delay=2.5, name="DLY")
        sink = PrimaryOutput(8, b, name="OUT")
        controller = run(Circuit(source, delay, sink))
        assert sink.trace(controller.context) == [(2.5, Word(3, 8))]

    def test_delay_validation(self):
        with pytest.raises(DesignError):
            Delay(1, BitConnector(), BitConnector(), delay=-0.1)
