"""Circuits and Design subclasses."""

import pytest

from repro.core import (BitConnector, Circuit, Design, DesignError,
                        ModuleSkeleton, PortDirection, Word,
                        WordConnector, connect)


def chain(width=4):
    a = ModuleSkeleton("a")
    b = ModuleSkeleton("b")
    out = a.add_port("o", PortDirection.OUT, width)
    inp = b.add_port("i", PortDirection.IN, width)
    connector = connect(out, inp)
    return a, b, connector


class TestCircuit:
    def test_needs_modules(self):
        with pytest.raises(DesignError):
            Circuit()

    def test_module_lookup(self):
        a, b, _c = chain()
        circuit = Circuit(a, b)
        assert circuit.module("a") is a
        with pytest.raises(DesignError):
            circuit.module("zzz")

    def test_duplicate_instance_rejected(self):
        a, b, _c = chain()
        with pytest.raises(DesignError, match="twice"):
            Circuit(a, b, a)

    def test_duplicate_name_rejected(self):
        a, _b, _c = chain()
        clone = ModuleSkeleton("a")
        with pytest.raises(DesignError, match="duplicate module name"):
            Circuit(a, clone)

    def test_connectors_enumerated_once(self):
        a, b, connector = chain()
        circuit = Circuit(a, b)
        assert circuit.connectors() == (connector,)

    def test_iteration_and_len(self):
        a, b, _c = chain()
        circuit = Circuit(a, b)
        assert list(circuit) == [a, b]
        assert len(circuit) == 2

    def test_check_flags_dangling_inputs(self):
        module = ModuleSkeleton("m")
        module.add_port("i", PortDirection.IN)
        module.add_port("o", PortDirection.OUT)
        warnings = Circuit(module).check()
        assert any("input port m.i" in w for w in warnings)
        # dangling outputs are legal
        assert not any("m.o" in w for w in warnings)

    def test_check_flags_half_connected_nets(self):
        module = ModuleSkeleton("m")
        port = module.add_port("o", PortDirection.OUT)
        BitConnector("lonely").attach(port)
        warnings = Circuit(module).check()
        assert any("lonely" in w for w in warnings)

    def test_clean_circuit_checks_empty(self):
        a, b, _c = chain()
        assert Circuit(a, b).check() == []

    def test_clear_scheduler_state(self):
        a, b, connector = chain()
        circuit = Circuit(a, b)
        connector.set_value(7, Word(3, 4))
        a._state[7] = {"x": 1}
        circuit.clear_scheduler_state(7)
        assert not connector.get_value(7).known
        assert 7 not in a._state


class TestDesign:
    def test_figure2_style_subclass(self):
        class Example(Design):
            def design(self):
                a, b, _c = chain()
                return Circuit(a, b, name="built")

        example = Example()
        circuit = example.build()
        assert circuit.name == "built"
        assert example.circuit is circuit

    def test_design_assigning_attribute(self):
        class Example(Design):
            def design(self):
                a, b, _c = chain()
                self.circuit = Circuit(a, b)

        assert len(Example().build()) == 2

    def test_design_without_circuit_rejected(self):
        class Broken(Design):
            def design(self):
                return None

        with pytest.raises(DesignError):
            Broken().build()

    def test_base_design_is_abstract(self):
        with pytest.raises(NotImplementedError):
            Design("d").design()
