"""Tokens and the time-ordered scheduler."""

import pytest

from repro.core import (ControlToken, EstimationToken, Logic,
                        ModuleSkeleton, PortDirection, Scheduler,
                        SchedulerInterferenceError, SelfTriggerToken,
                        SignalToken, SimulationError, Token)


@pytest.fixture
def module():
    return ModuleSkeleton("target")


class TestTokens:
    def test_token_ids_are_unique(self, module):
        a, b = Token(module), Token(module)
        assert a.token_id != b.token_id

    def test_kind_tags(self, module):
        port = module.add_port("p", PortDirection.IN)
        assert SignalToken(module, port, Logic.ONE).kind == "SignalToken"
        assert SelfTriggerToken(module).kind == "SelfTriggerToken"
        assert ControlToken(module, "reset").kind == "ControlToken"
        assert EstimationToken(module, None, None).kind == \
            "EstimationToken"

    def test_self_trigger_payload(self, module):
        token = SelfTriggerToken(module, tag="edge", payload=3)
        assert token.tag == "edge" and token.payload == 3


class TestScheduler:
    def test_time_ordering(self, module):
        scheduler = Scheduler()
        late = Token(module)
        early = Token(module)
        scheduler.schedule(late, delay=5.0)
        scheduler.schedule(early, delay=1.0)
        assert scheduler.pop() is early
        assert scheduler.now == 1.0
        assert scheduler.pop() is late
        assert scheduler.now == 5.0

    def test_fifo_at_equal_time(self, module):
        scheduler = Scheduler()
        tokens = [Token(module) for _ in range(5)]
        for token in tokens:
            scheduler.schedule(token, delay=2.0)
        assert [scheduler.pop() for _ in tokens] == tokens

    def test_negative_delay_rejected(self, module):
        with pytest.raises(SimulationError):
            Scheduler().schedule(Token(module), delay=-1.0)

    def test_pop_empty_rejected(self):
        with pytest.raises(SimulationError):
            Scheduler().pop()

    def test_next_time_and_pending(self, module):
        scheduler = Scheduler()
        assert scheduler.next_time() is None
        assert scheduler.empty
        scheduler.schedule(Token(module), delay=3.0)
        assert scheduler.next_time() == 3.0
        assert scheduler.pending == 1

    def test_clear(self, module):
        scheduler = Scheduler()
        scheduler.schedule(Token(module))
        scheduler.clear()
        assert scheduler.empty

    def test_unique_ids(self):
        assert Scheduler().scheduler_id != Scheduler().scheduler_id

    def test_cross_scheduler_interference_rejected(self, module):
        """A token joined to one scheduler cannot move to another --
        the structural guarantee behind interference-free concurrency."""
        first, second = Scheduler(), Scheduler()
        token = Token(module)
        first.schedule(token)
        with pytest.raises(SchedulerInterferenceError):
            second.schedule(token)

    def test_rescheduling_on_same_scheduler_is_fine(self, module):
        scheduler = Scheduler()
        token = Token(module)
        scheduler.schedule(token)
        scheduler.pop()
        scheduler.schedule(token, delay=1.0)  # modules may re-use tokens
        assert scheduler.pending == 1

    def test_events_delivered_counter(self, module):
        scheduler = Scheduler()
        for _ in range(3):
            scheduler.schedule(Token(module))
        while not scheduler.empty:
            scheduler.pop()
        assert scheduler.events_delivered == 3

    def test_now_advances_monotonically(self, module):
        scheduler = Scheduler()
        for delay in (4.0, 1.0, 2.5, 2.5, 9.0):
            scheduler.schedule(Token(module), delay=delay)
        times = []
        while not scheduler.empty:
            scheduler.pop()
            times.append(scheduler.now)
        assert times == sorted(times)
