"""The Table 1 estimators: characterization and accuracy ordering."""

import math
import random

import pytest

from repro.core import (Circuit, PatternPrimaryInput, PrimaryOutput,
                        SimulationController, WordConnector)
from repro.estimation import AVERAGE_POWER
from repro.gates import array_multiplier
from repro.power import (ConstantPowerEstimator,
                         LinearRegressionPowerEstimator, SiliconReference,
                         ToggleCountModel, characterize_constant,
                         fit_regression, operands_to_inputs,
                         pair_activity)
from repro.rtl import WordMultiplier

WIDTH = 6


@pytest.fixture(scope="module")
def netlist():
    return array_multiplier(WIDTH)


def training_patterns(n=200, seed=5):
    rng = random.Random(seed)
    return [(rng.getrandbits(WIDTH), rng.getrandbits(WIDTH))
            for _ in range(n)]


class TestCharacterization:
    def test_constant_is_the_training_mean(self, netlist):
        reference = SiliconReference(netlist)
        patterns = training_patterns()
        estimator = characterize_constant(reference, patterns,
                                          ("a", "b"), (WIDTH, WIDTH))
        reference.reset()
        powers = [reference.power_of_pattern(
            operands_to_inputs(p, ("a", "b"), (WIDTH, WIDTH)))
            for p in patterns]
        assert estimator._value == pytest.approx(
            sum(powers) / len(powers))

    def test_regression_fit_tracks_activity(self, netlist):
        reference = SiliconReference(netlist)
        estimator = fit_regression(reference, training_patterns(),
                                   ("a", "b"), (WIDTH, WIDTH))
        assert estimator.slope > 0  # more flips, more power

    def test_regression_beats_constant_on_extreme_activity(self, netlist):
        patterns = training_patterns()
        reference = SiliconReference(netlist)
        constant = characterize_constant(reference, patterns, ("a", "b"),
                                         (WIDTH, WIDTH))
        reference = SiliconReference(netlist)
        regression = fit_regression(reference, patterns, ("a", "b"),
                                    (WIDTH, WIDTH))
        # An idle transition (zero activity): constant grossly
        # overestimates, regression predicts near its intercept.
        assert regression.intercept < constant._value


class TestEstimatorsInTheFramework:
    def test_linreg_tracks_port_activity_per_scheduler(self, netlist):
        reference = SiliconReference(netlist)
        regression = fit_regression(reference, training_patterns(),
                                    ("a", "b"), (WIDTH, WIDTH))
        a, b = WordConnector(WIDTH), WordConnector(WIDTH)
        o = WordConnector(2 * WIDTH)
        pattern_pairs = [(0, 0), (63, 63), (63, 63)]
        ina = PatternPrimaryInput(WIDTH, [p[0] for p in pattern_pairs],
                                  a, name="INA")
        inb = PatternPrimaryInput(WIDTH, [p[1] for p in pattern_pairs],
                                  b, name="INB")
        mult = WordMultiplier(WIDTH, a, b, o, name="MULT")
        mult.add_estimator(regression)
        out = PrimaryOutput(2 * WIDTH, o, name="OUT")
        circuit = Circuit(ina, inb, mult, out)

        from repro.estimation import ByName, SetupController
        setup = SetupController()
        setup.set(AVERAGE_POWER, ByName(regression.name))
        setup.apply(circuit)
        controller = SimulationController(circuit, setup=setup)
        controller.start()
        series = setup.results.series("MULT", AVERAGE_POWER.name)
        assert len(series) == 3
        # (0,0) -> intercept; (63,63) -> intercept + 12*slope; repeat ->
        # intercept again (no flips).
        assert series[0] == pytest.approx(regression.intercept)
        assert series[1] == pytest.approx(
            regression.intercept + 12 * regression.slope)
        assert series[2] == pytest.approx(regression.intercept)

    def test_constant_estimator_metadata(self):
        estimator = ConstantPowerEstimator(0.5)
        assert estimator.parameter == AVERAGE_POWER.name
        assert estimator.cost == 0.0 and not estimator.remote


class TestAccuracyOrdering:
    def test_table1_error_ordering_holds(self, netlist):
        """Constant > regression > calibrated gate-level, in normalized
        average error over a regime-switching stimulus."""
        from repro.bench import heterogeneous_patterns
        from repro.power.toggle import calibrate_toggle_model

        train = heterogeneous_patterns(WIDTH, 250, seed=3)
        evaluation = heterogeneous_patterns(WIDTH, 120, seed=4)

        reference = SiliconReference(netlist)
        constant = characterize_constant(reference, train, ("a", "b"),
                                         (WIDTH, WIDTH))
        reference = SiliconReference(netlist)
        regression = fit_regression(reference, train, ("a", "b"),
                                    (WIDTH, WIDTH))
        toggle = ToggleCountModel(netlist)
        reference = SiliconReference(netlist)
        scale = calibrate_toggle_model(
            toggle, reference,
            [operands_to_inputs(p, ("a", "b"), (WIDTH, WIDTH))
             for p in train])

        reference = SiliconReference(netlist)
        toggle.reset()
        previous = (0, 0)
        truths, const_err, lin_err, gate_err = [], [], [], []
        for pattern in evaluation:
            inputs = operands_to_inputs(pattern, ("a", "b"),
                                        (WIDTH, WIDTH))
            truth = reference.power_of_pattern(inputs)
            truths.append(truth)
            activity = pair_activity(previous, pattern)
            previous = pattern
            const_err.append(abs(constant._value - truth))
            lin_err.append(abs(regression.intercept
                               + regression.slope * activity - truth))
            gate_err.append(abs(toggle.power_of_pattern(inputs) * scale
                                - truth))
        mean_truth = sum(truths) / len(truths)

        def normalized(errors):
            return sum(errors) / len(errors) / mean_truth * 100

        assert normalized(const_err) > normalized(lin_err) \
            > normalized(gate_err)
