"""Switching-activity statistics."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import Word
from repro.power import (activity_profile, hamming, pair_activity,
                         sequence_activity, word_activity)


class TestHamming:
    @given(st.integers(0, 2**16 - 1), st.integers(0, 2**16 - 1))
    def test_symmetric(self, a, b):
        assert hamming(a, b) == hamming(b, a)

    def test_known_cases(self):
        assert hamming(0b1010, 0b0101) == 4
        assert hamming(7, 7) == 0

    @given(st.integers(0, 255), st.integers(0, 255),
           st.integers(0, 255))
    def test_triangle_inequality(self, a, b, c):
        assert hamming(a, c) <= hamming(a, b) + hamming(b, c)


class TestPairActivity:
    def test_sums_operands(self):
        assert pair_activity((0b11, 0b00), (0b00, 0b01)) == 3

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            pair_activity((1,), (1, 2))


class TestSequenceActivity:
    def test_first_entry_counts_from_zero(self):
        acts = sequence_activity([(0b1, 0b1), (0b1, 0b1)])
        assert acts == [2, 0]

    def test_empty(self):
        assert sequence_activity([]) == []

    def test_tracks_transitions(self):
        acts = sequence_activity([(0, 0), (3, 0), (3, 3)])
        assert acts == [0, 2, 2]


class TestWordActivity:
    def test_matches_hamming(self):
        assert word_activity(Word(0xF0, 8), Word(0x0F, 8)) == 8

    def test_unknown_contributes_zero(self):
        assert word_activity(Word.unknown(8), Word(3, 8)) == 0
        assert word_activity(Word(3, 8), Word.unknown(8)) == 0


class TestProfile:
    def test_statistics(self):
        profile = activity_profile([(0, 0), (0xFF, 0)], widths=(8, 8))
        assert profile["peak"] == 8.0
        assert profile["mean"] == 4.0
        assert profile["density"] == pytest.approx(4.0 / 16)

    def test_empty_profile(self):
        profile = activity_profile([], widths=(8,))
        assert profile == {"mean": 0.0, "peak": 0.0, "density": 0.0}
