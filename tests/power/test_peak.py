"""Peak-power and I/O-activity estimators."""

import pytest

from repro.core import (Circuit, PatternPrimaryInput, PrimaryOutput,
                        SimulationController, WordConnector)
from repro.estimation import (IO_ACTIVITY, PEAK_POWER, ByName,
                              CallableEstimator, SetupController)
from repro.power import IOActivityEstimator, PeakPowerEstimator
from repro.rtl import WordAdder


def adder_circuit(pairs):
    a, b = WordConnector(8), WordConnector(8)
    o = WordConnector(8)
    ina = PatternPrimaryInput(8, [p[0] for p in pairs], a, name="INA")
    inb = PatternPrimaryInput(8, [p[1] for p in pairs], b, name="INB")
    adder = WordAdder(8, a, b, o, name="ADD")
    out = PrimaryOutput(8, o, name="OUT")
    return Circuit(ina, inb, adder, out), adder


def run_with(circuit, parameter, estimator_name, setup_name="s"):
    setup = SetupController(name=setup_name)
    setup.set(parameter, ByName(estimator_name))
    setup.apply(circuit)
    controller = SimulationController(circuit, setup=setup)
    controller.start()
    return setup


class TestIOActivity:
    def test_counts_port_flips_per_instant(self):
        circuit, adder = adder_circuit([(0x00, 0x00), (0xFF, 0x00),
                                        (0xFF, 0x00)])
        adder.add_estimator(IOActivityEstimator(ports=("a", "b")))
        setup = run_with(circuit, IO_ACTIVITY, "io-activity")
        series = setup.results.series("ADD", IO_ACTIVITY.name)
        # Instant 0 establishes the baseline (no previous values).
        assert series[0] == 0.0
        assert series[1] == 8.0   # a flipped all 8 bits
        assert series[2] == 0.0   # nothing changed

    def test_cumulative_mode(self):
        circuit, adder = adder_circuit([(0, 0), (0xFF, 0xFF), (0, 0)])
        adder.add_estimator(IOActivityEstimator(ports=("a", "b"),
                                                cumulative=True,
                                                name="io-cum"))
        setup = run_with(circuit, IO_ACTIVITY, "io-cum")
        series = setup.results.series("ADD", IO_ACTIVITY.name)
        assert series == [0.0, 16.0, 32.0]

    def test_all_connected_ports_by_default(self):
        circuit, adder = adder_circuit([(0x0F, 0x00), (0x00, 0x0F)])
        adder.add_estimator(IOActivityEstimator())
        setup = run_with(circuit, IO_ACTIVITY, "io-activity")
        series = setup.results.series("ADD", IO_ACTIVITY.name)
        # Second instant: a flips 4 bits, b flips 4 bits, and the output
        # o stays 0x0F (0x0F+0 == 0+0x0F) -> 8 flips.
        assert series[1] == 8.0

    def test_free_and_local(self):
        estimator = IOActivityEstimator()
        assert estimator.cost == 0.0 and not estimator.remote


class TestPeakPower:
    def test_tracks_running_maximum(self):
        circuit, adder = adder_circuit([(1, 1), (2, 2), (3, 3)])
        values = iter([0.5, 2.0, 1.0])
        inner = CallableEstimator("average_power", "fake-power",
                                  lambda m, c: next(values))
        adder.add_estimator(PeakPowerEstimator(inner))
        setup = run_with(circuit, PEAK_POWER, "peak(fake-power)")
        series = setup.results.series("ADD", PEAK_POWER.name)
        assert series == [0.5, 2.0, 2.0]

    def test_inherits_remoteness_and_metadata(self):
        inner = CallableEstimator("average_power", "inner",
                                  lambda m, c: 1.0, expected_error=10.0,
                                  cost=0.1)
        peak = PeakPowerEstimator(inner)
        assert peak.expected_error == 10.0
        assert peak.cost == 0.1
        assert not peak.remote
        assert peak.name == "peak(inner)"
