"""Toggle-count power model and the silicon reference."""

import pytest

from repro.core.signal import Logic
from repro.gates import Netlist, array_multiplier
from repro.power import SiliconReference, ToggleCountModel
from repro.power.constant import operands_to_inputs
from repro.power.toggle import calibrate_toggle_model


def buffer_netlist():
    netlist = Netlist("buf")
    netlist.add_input("a")
    netlist.add_output("o")
    netlist.add_gate("BUF", ["a"], "o", name="g")
    netlist.validate()
    return netlist


class TestToggleCountModel:
    def test_energy_of_single_toggle(self):
        netlist = buffer_netlist()
        model = ToggleCountModel(netlist)
        # First pattern establishes 0; flipping to 1 toggles the buffer.
        assert model.energy_of_pattern({"a": Logic.ZERO}) == 0.0
        energy = model.energy_of_pattern({"a": Logic.ONE})
        assert energy == pytest.approx(netlist.gates[0].cell.energy)

    def test_no_toggle_no_energy(self):
        model = ToggleCountModel(buffer_netlist())
        model.energy_of_pattern({"a": Logic.ONE})
        assert model.energy_of_pattern({"a": Logic.ONE}) == 0.0

    def test_power_scales_with_frequency(self):
        slow = ToggleCountModel(buffer_netlist(), frequency=1e6)
        fast = ToggleCountModel(buffer_netlist(), frequency=2e6)
        assert fast.power_of_pattern({"a": Logic.ONE}) == pytest.approx(
            2 * slow.power_of_pattern({"a": Logic.ONE}))

    def test_reset_restarts_sequence(self):
        model = ToggleCountModel(buffer_netlist())
        model.energy_of_pattern({"a": Logic.ONE})
        model.reset()
        # After reset the model re-settles at zero, so a 1 toggles again.
        assert model.energy_of_pattern({"a": Logic.ONE}) > 0

    def test_sequence_helper(self):
        model = ToggleCountModel(buffer_netlist())
        powers = model.power_of_sequence(
            [{"a": Logic.ONE}, {"a": Logic.ONE}, {"a": Logic.ZERO}])
        assert powers[0] > 0 and powers[1] == 0 and powers[2] > 0

    def test_activity_dependence_on_multiplier(self):
        netlist = array_multiplier(4)
        model = ToggleCountModel(netlist)
        idle = model.power_of_sequence(
            [operands_to_inputs((5, 5), ("a", "b"), (4, 4))] * 4)
        model.reset()
        busy = model.power_of_sequence(
            [operands_to_inputs((p % 16, (p * 7) % 16), ("a", "b"),
                                (4, 4)) for p in range(4)])
        assert sum(busy) > sum(idle)


class TestSiliconReference:
    def test_deterministic_for_seed(self):
        netlist = array_multiplier(4)
        pattern = operands_to_inputs((9, 12), ("a", "b"), (4, 4))
        first = SiliconReference(netlist, seed=1).power_of_pattern(pattern)
        second = SiliconReference(netlist,
                                  seed=1).power_of_pattern(pattern)
        assert first == pytest.approx(second)

    def test_different_seeds_differ(self):
        netlist = array_multiplier(4)
        pattern = operands_to_inputs((9, 12), ("a", "b"), (4, 4))
        first = SiliconReference(netlist, seed=1).power_of_pattern(pattern)
        second = SiliconReference(netlist,
                                  seed=2).power_of_pattern(pattern)
        assert first != pytest.approx(second)

    def test_leakage_floor(self):
        netlist = array_multiplier(4)
        reference = SiliconReference(netlist, leakage_fj=40.0)
        zero = operands_to_inputs((0, 0), ("a", "b"), (4, 4))
        reference.power_of_pattern(zero)
        # Idle pattern: dynamic energy zero, leakage remains.
        assert reference.energy_of_pattern(zero) == pytest.approx(40.0)

    def test_exceeds_pure_toggle_count(self):
        """Short-circuit + glitching systematically exceed the bare
        toggle energy (which is why calibration is needed)."""
        netlist = array_multiplier(4)
        reference = SiliconReference(netlist, leakage_fj=0.0)
        toggle = ToggleCountModel(netlist)
        patterns = [operands_to_inputs(((3 * i) % 16, (5 * i + 1) % 16),
                                       ("a", "b"), (4, 4))
                    for i in range(30)]
        assert sum(reference.power_of_sequence(patterns)) > \
            sum(toggle.power_of_sequence(patterns))


class TestCalibration:
    def test_calibration_removes_bias(self):
        netlist = array_multiplier(4)
        patterns = [operands_to_inputs(((7 * i) % 16, (3 * i + 2) % 16),
                                       ("a", "b"), (4, 4))
                    for i in range(60)]
        toggle = ToggleCountModel(netlist)
        reference = SiliconReference(netlist)
        scale = calibrate_toggle_model(toggle, reference, patterns)
        assert scale > 1.0  # silicon draws more than the bare count
        toggle.reset()
        reference.reset()
        estimated = sum(toggle.power_of_sequence(patterns)) * scale
        measured = sum(reference.power_of_sequence(patterns))
        assert estimated == pytest.approx(measured, rel=0.02)

    def test_zero_model_power_is_safe(self):
        netlist = buffer_netlist()
        toggle = ToggleCountModel(netlist)
        reference = SiliconReference(netlist)
        # Constant patterns: no toggles at all.
        scale = calibrate_toggle_model(toggle, reference,
                                       [{"a": Logic.ZERO}] * 3)
        assert scale == 1.0
