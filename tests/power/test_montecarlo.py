"""Monte-Carlo average-power convergence."""

import pytest

from repro.core.errors import EstimationError
from repro.gates import array_multiplier, parity_tree
from repro.power import (MonteCarloResult, SiliconReference,
                         ToggleCountModel, monte_carlo_power)


class TestConvergence:
    def test_converges_on_multiplier(self):
        model = ToggleCountModel(array_multiplier(4))
        result = monte_carlo_power(model, ("a", "b"), (4, 4),
                                   relative_tolerance=0.05, seed=1)
        assert result.converged
        assert result.mean_mw > 0
        assert result.relative_half_width <= 0.05
        assert 30 <= result.patterns <= 5000

    def test_tighter_tolerance_needs_more_patterns(self):
        def patterns_for(tolerance):
            model = ToggleCountModel(array_multiplier(4))
            return monte_carlo_power(model, ("a", "b"), (4, 4),
                                     relative_tolerance=tolerance,
                                     seed=2).patterns

        assert patterns_for(0.02) > patterns_for(0.10)

    def test_deterministic_for_seed(self):
        def run(seed):
            model = ToggleCountModel(parity_tree(4))
            return monte_carlo_power(model, ("i",), (4,), seed=seed)

        assert run(3).mean_mw == pytest.approx(run(3).mean_mw)
        assert run(3).patterns == run(3).patterns

    def test_budget_exhaustion_reports_not_converged(self):
        model = SiliconReference(array_multiplier(4))
        result = monte_carlo_power(model, ("a", "b"), (4, 4),
                                   relative_tolerance=0.0001,
                                   max_patterns=50, seed=4)
        assert not result.converged
        assert result.patterns == 50

    def test_mean_matches_direct_average(self):
        """The Welford stream agrees with a plain replay average."""
        import random
        from repro.power import operands_to_inputs

        model = ToggleCountModel(parity_tree(4))
        result = monte_carlo_power(model, ("i",), (4,),
                                   relative_tolerance=0.1, seed=7)
        rng = random.Random(7)
        replay = ToggleCountModel(parity_tree(4))
        powers = [replay.power_of_pattern(
            operands_to_inputs((rng.getrandbits(4),), ("i",), (4,)))
            for _ in range(result.patterns)]
        assert result.mean_mw == pytest.approx(sum(powers) / len(powers))

    def test_custom_pattern_source(self):
        model = ToggleCountModel(parity_tree(4))
        constant_result = monte_carlo_power(
            model, ("i",), (4,), min_patterns=5, max_patterns=40,
            pattern_source=lambda rng: (0b1010,))
        # A constant stimulus has zero power after the first transition:
        # the mean stays ~0 and never converges relative to itself.
        assert constant_result.mean_mw == pytest.approx(0.0, abs=1e-6) \
            or constant_result.patterns <= 40

    def test_validation(self):
        model = ToggleCountModel(parity_tree(4))
        with pytest.raises(EstimationError):
            monte_carlo_power(model, ("i",), (4,),
                              relative_tolerance=0.0)
        with pytest.raises(EstimationError):
            monte_carlo_power(model, ("i",), (4,), min_patterns=1)
