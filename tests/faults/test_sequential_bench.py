"""s-series benches through the sequential fault simulators."""

import random

import pytest

from repro.bench import functional_model_of
from repro.core import Logic
from repro.faults import (SequentialSerialFaultSimulator,
                          SequentialVirtualFaultSimulator,
                          TestabilityServant, build_fault_list,
                          design_from_bench)
from repro.gates import load_bench


def random_sequence(design, length, seed=0):
    rng = random.Random(seed)
    return [{net: Logic(rng.getrandbits(1))
             for net in design.primary_inputs}
            for _ in range(length)]


class TestDesignFromBench:
    def test_s27_maps_onto_sequential_design(self):
        bench = load_bench("s27")
        design = design_from_bench(bench)
        assert design.primary_inputs == bench.primary_inputs
        assert len(design.registers) == bench.ff_count()
        assert len(design.ip_inputs) == len(bench.core.inputs)
        assert len(design.ip_outputs) == len(bench.core.outputs)

    @pytest.mark.parametrize("name", ["s27", "salu8"])
    def test_corpus_sequential_benches_map(self, name):
        design = design_from_bench(load_bench(name))
        state = design.reset_state()
        assert all(value is Logic.ZERO for value in state.values())


class TestSerialSimulation:
    def test_s27_detects_faults_over_a_sequence(self):
        bench = load_bench("s27")
        design = design_from_bench(bench)
        fault_list = build_fault_list(bench.core)
        serial = SequentialSerialFaultSimulator(design, bench.core,
                                                fault_list)
        report = serial.run(random_sequence(design, 60, seed=3))
        assert report.total_faults == len(fault_list)
        assert report.coverage > 0.5

    def test_s27_multi_cycle_propagation(self):
        """Some s27 faults cross a register before reaching G17."""
        bench = load_bench("s27")
        design = design_from_bench(bench)
        serial = SequentialSerialFaultSimulator(
            design, bench.core, build_fault_list(bench.core))
        report = serial.run(random_sequence(design, 30, seed=3))
        assert any(index >= 1 for index in report.detected.values())


class TestVirtualEqualsSerial:
    @pytest.mark.parametrize("name,length,seed", [
        ("s27", 16, 3), ("s27", 24, 11),
    ])
    def test_bench_sequences_agree(self, name, length, seed):
        bench = load_bench(name)
        design = design_from_bench(bench)
        fault_list = build_fault_list(bench.core)
        servant = TestabilityServant(bench.core, fault_list)
        virtual = SequentialVirtualFaultSimulator(
            design, servant, functional_model_of(bench.core))
        serial = SequentialSerialFaultSimulator(design, bench.core,
                                                fault_list)
        sequence = random_sequence(design, length, seed)
        assert dict(virtual.run(sequence).detected) == \
            dict(serial.run(sequence).detected)
