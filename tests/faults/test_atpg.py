"""Deterministic test generation: correctness and completeness."""

import pytest

from repro.core import Logic
from repro.faults import (ABORTED, DETECTED, UNTESTABLE, StuckAtFault,
                          build_fault_list, generate_test,
                          generate_test_set)
from repro.faults.serial import SerialFaultSimulator
from repro.gates import Netlist, c17, ip1_block, parity_tree, \
    ripple_carry_adder


def and_or():
    """o = (a AND b) OR c -- has an easy redundancy when extended."""
    netlist = Netlist("ao")
    netlist.add_input("a")
    netlist.add_input("b")
    netlist.add_input("c")
    netlist.add_gate("AND", ["a", "b"], "n1")
    netlist.add_output("o")
    netlist.add_gate("OR", ["n1", "c"], "o")
    netlist.validate()
    return netlist


def redundant():
    """o = a OR (a AND b): the AND branch is redundant -- its sa0 is
    untestable because ``a`` dominates the OR whenever the AND is 1."""
    netlist = Netlist("red")
    netlist.add_input("a")
    netlist.add_input("b")
    netlist.add_gate("AND", ["a", "b"], "n1")
    netlist.add_output("o")
    netlist.add_gate("OR", ["a", "n1"], "o")
    netlist.validate()
    return netlist


class TestGenerateTest:
    def test_finds_pattern_for_testable_fault(self):
        netlist = and_or()
        result = generate_test(netlist, StuckAtFault.stem("n1", 0))
        assert result.found
        # Verify the pattern really detects the fault.
        simulator = SerialFaultSimulator(
            netlist, build_fault_list(netlist, "none"))
        assert simulator.detects(result.pattern, "n1sa0")

    def test_pattern_is_fully_specified(self):
        result = generate_test(and_or(), StuckAtFault.stem("n1", 0))
        assert set(result.pattern) == {"a", "b", "c"}
        assert all(value.is_known for value in result.pattern.values())

    def test_proves_untestable_redundant_fault(self):
        netlist = redundant()
        result = generate_test(netlist, StuckAtFault.stem("n1", 0))
        assert result.status == UNTESTABLE
        # Cross-check by exhaustion: no input pattern detects it.
        simulator = SerialFaultSimulator(
            netlist, build_fault_list(netlist, "none"))
        for a in (0, 1):
            for b in (0, 1):
                assert not simulator.detects(
                    {"a": Logic(a), "b": Logic(b)}, "n1sa0")

    def test_backtrack_budget_aborts(self):
        netlist = ripple_carry_adder(6)
        fault = StuckAtFault.stem("fa5_co", 0)
        result = generate_test(netlist, fault, max_backtracks=0)
        assert result.status in (DETECTED, ABORTED)

    @pytest.mark.parametrize("net,value", [
        ("10", 0), ("10", 1), ("16", 0), ("22", 1)])
    def test_c17_faults_all_testable(self, net, value):
        netlist = c17()
        result = generate_test(netlist, StuckAtFault.stem(net, value))
        assert result.found
        simulator = SerialFaultSimulator(
            netlist, build_fault_list(netlist, "none"))
        assert simulator.detects(result.pattern, f"{net}sa{value}")

    def test_every_generated_pattern_verifies(self):
        """Exhaustive cross-check on a whole small circuit."""
        netlist = ip1_block()
        fault_list = build_fault_list(netlist, "none")
        simulator = SerialFaultSimulator(netlist, fault_list)
        for name in fault_list.names():
            result = generate_test(netlist, fault_list.fault(name))
            if result.found:
                assert simulator.detects(result.pattern, name), name
            else:
                # Claimed untestable: verify by exhaustion (2 inputs).
                for word in range(4):
                    pattern = {"IIP1": Logic(word & 1),
                               "IIP2": Logic((word >> 1) & 1)}
                    assert not simulator.detects(pattern, name), name


class TestGenerateTestSet:
    def test_full_coverage_on_c17(self):
        test_set = generate_test_set(c17(), random_patterns=4, seed=1)
        assert test_set.coverage == 1.0
        assert not test_set.untestable and not test_set.aborted

    def test_detects_what_it_claims(self):
        netlist = parity_tree(4)
        fault_list = build_fault_list(netlist)
        test_set = generate_test_set(netlist, fault_list,
                                     random_patterns=2, seed=9)
        simulator = SerialFaultSimulator(netlist, fault_list)
        for name, index in test_set.detected.items():
            assert simulator.detects(test_set.patterns[index], name)

    def test_redundancy_identified(self):
        test_set = generate_test_set(redundant(),
                                     build_fault_list(redundant(),
                                                      "none"),
                                     random_patterns=8, seed=2)
        assert "n1sa0" in test_set.untestable
        assert test_set.testable_coverage == 1.0

    def test_random_phase_drops_faults(self):
        """With generous random patterns, few deterministic calls are
        needed; the test set stays compact."""
        netlist = ripple_carry_adder(3)
        test_set = generate_test_set(netlist, random_patterns=64,
                                     seed=3)
        assert test_set.coverage == 1.0
        assert len(test_set.patterns) < 30

    def test_zero_random_patterns_pure_deterministic(self):
        test_set = generate_test_set(c17(), random_patterns=0, seed=0)
        assert test_set.coverage == 1.0
