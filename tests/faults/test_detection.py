"""Detection tables: construction, queries, marshalling."""

import pytest

from repro.core import Logic
from repro.faults import (DetectionTable, build_detection_table,
                          build_fault_list)
from repro.gates import ip1_block
from repro.rmi import marshal, unmarshal


@pytest.fixture(scope="module")
def ip1():
    netlist = ip1_block()
    return netlist, build_fault_list(netlist, collapse="none")


def table_for(ip1, a, b, only=None):
    netlist, faults = ip1
    return build_detection_table(
        netlist, faults, {"IIP1": Logic(a), "IIP2": Logic(b)}, only=only)


class TestConstruction:
    def test_paper_rows_for_input_10(self, ip1):
        table = table_for(ip1, 1, 0)
        assert table.fault_free == (Logic.ONE, Logic.ZERO)
        assert "I6sa1" in table.faults_causing((Logic.ONE, Logic.ONE))
        row_00 = table.faults_causing((Logic.ZERO, Logic.ZERO))
        assert {"I3sa0", "I4sa1"} <= row_00

    def test_rows_partition_by_output_pattern(self, ip1):
        table = table_for(ip1, 1, 0)
        seen = set()
        for names in table.rows.values():
            assert not names & seen  # a fault appears in one row only
            seen |= names

    def test_fault_free_pattern_never_a_row(self, ip1):
        table = table_for(ip1, 1, 1)
        assert table.fault_free not in table.rows

    def test_undetectable_faults_absent(self, ip1):
        netlist, faults = ip1
        table = table_for(ip1, 0, 0)
        covered = table.covered_faults()
        # Faults absent from every row are not excitable/propagatable by
        # this input; e.g. I6sa0 needs I6=1, impossible at (0,0).
        assert "I6sa0" not in covered

    def test_only_restricts(self, ip1):
        table = table_for(ip1, 1, 0, only=["I3sa0"])
        assert table.covered_faults() == frozenset({"I3sa0"})

    def test_output_for_fault(self, ip1):
        table = table_for(ip1, 1, 0)
        assert table.output_for_fault("I3sa0") == (Logic.ZERO, Logic.ZERO)
        assert table.output_for_fault("nonexistent") is None

    def test_same_input_same_table(self, ip1):
        """The paper's caching argument: identical input configurations
        lead to the same detection table."""
        assert table_for(ip1, 1, 0) == table_for(ip1, 1, 0)
        assert table_for(ip1, 1, 0) != table_for(ip1, 0, 1)


class TestMarshalling:
    def test_roundtrip_preserves_rows(self, ip1):
        table = table_for(ip1, 1, 0)
        restored = unmarshal(marshal(table))
        assert isinstance(restored, DetectionTable)
        assert restored == table
        assert restored.rows == table.rows

    def test_logic_bits_survive_the_wire(self, ip1):
        restored = unmarshal(marshal(table_for(ip1, 1, 0)))
        for pattern in restored.rows:
            assert all(isinstance(bit, Logic) for bit in pattern)
        assert all(isinstance(bit, Logic)
                   for bit in restored.input_pattern)

    def test_obfuscated_table_reveals_no_structure(self):
        """With obfuscated symbolic names (what a protective provider
        exports) the wire image contains no net or gate names at all."""
        netlist = ip1_block()
        faults = build_fault_list(netlist, obfuscate=True, prefix="s")
        table = build_detection_table(
            netlist, faults, {"IIP1": Logic.ONE, "IIP2": Logic.ZERO})
        wire = marshal(table).decode()
        for leak in ("NAND", "gI3", "I3sa0", "I6", "->"):
            assert leak not in wire
        # Yet the table is still fully usable: rows map erroneous
        # outputs to symbolic handles the provider can resolve.
        assert table.rows
