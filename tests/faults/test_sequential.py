"""Sequential-circuit virtual fault simulation."""

import random

import pytest

from repro.bench import functional_model_of
from repro.core import DesignError, Logic
from repro.faults import (SequentialDesign, SequentialEvaluator,
                          SequentialSerialFaultSimulator,
                          SequentialVirtualFaultSimulator,
                          TestabilityServant, build_fault_list,
                          reports_agree)
from repro.gates import Netlist, ip1_block, parity_tree, random_netlist


def build_sequential(ip_netlist, name="seq"):
    """The library's synchronous wrapper (local alias for readability)."""
    from repro.bench import build_sequential_wrapper
    return build_sequential_wrapper(ip_netlist, name)


def random_sequence(design, length, seed):
    rng = random.Random(seed)
    return [{net: Logic(rng.getrandbits(1))
             for net in design.primary_inputs}
            for _ in range(length)]


class TestSequentialDesign:
    def test_validation_catches_unclassified_inputs(self):
        logic = Netlist("l")
        logic.add_input("x")
        logic.add_input("mystery")
        logic.add_output("o")
        logic.add_gate("AND", ["x", "mystery"], "o")
        logic.validate()
        with pytest.raises(DesignError, match="not classified"):
            SequentialDesign(logic=logic, registers={},
                             primary_inputs=("x",),
                             primary_outputs=("o",), ip_inputs=(),
                             ip_outputs=())

    def test_ip_feedback_rejected(self):
        logic = Netlist("l")
        logic.add_input("io0")
        logic.add_output("ii0")
        logic.add_gate("BUF", ["io0"], "ii0")  # comb IP feedback
        logic.validate()
        with pytest.raises(DesignError, match="feedback"):
            SequentialDesign(logic=logic, registers={},
                             primary_inputs=(), primary_outputs=(),
                             ip_inputs=("ii0",), ip_outputs=("io0",))

    def test_reset_state_defaults_to_zero(self):
        design = build_sequential(ip1_block())
        state = design.reset_state()
        assert all(value is Logic.ZERO for value in state.values())


class TestEvaluator:
    def test_state_advances_through_registers(self):
        ip_netlist = ip1_block()
        design = build_sequential(ip_netlist)
        evaluator = SequentialEvaluator(design)
        behaviour = functional_model_of(ip_netlist)
        state = design.reset_state()
        # Cycle 1: x=(1,0), s=(0,0) -> IP in (1,0) -> out (1,0) -> next
        # state s=(1,0); PO observes the OLD state XOR x = (1,0).
        pattern = {"x0": Logic.ONE, "x1": Logic.ZERO}
        state, outputs, ip_in = evaluator.step(state, pattern, behaviour)
        assert ip_in == (Logic.ONE, Logic.ZERO)
        assert outputs == (Logic.ONE, Logic.ZERO)
        assert state == {"s0": Logic.ONE, "s1": Logic.ZERO}
        # Cycle 2 sees the updated state.
        state2, outputs2, ip_in2 = evaluator.step(state, pattern,
                                                  behaviour)
        assert ip_in2 == (Logic.ZERO, Logic.ZERO)
        assert outputs2 == (Logic.ZERO, Logic.ZERO)

    def test_missing_pattern_input_rejected(self):
        design = build_sequential(ip1_block())
        evaluator = SequentialEvaluator(design)
        with pytest.raises(Exception, match="missing"):
            evaluator.step(design.reset_state(), {},
                           functional_model_of(ip1_block()))


class TestVirtualEqualsSerial:
    @pytest.mark.parametrize("factory,seed", [
        (ip1_block, 3), (lambda: parity_tree(3), 11),
        (lambda: random_netlist(3, 10, 2, seed=5), 17),
    ])
    def test_sequences_agree(self, factory, seed):
        ip_netlist = factory()
        design = build_sequential(ip_netlist)
        fault_list = build_fault_list(ip_netlist)
        servant = TestabilityServant(ip_netlist, fault_list)
        virtual = SequentialVirtualFaultSimulator(
            design, servant, functional_model_of(ip_netlist))
        serial = SequentialSerialFaultSimulator(design, ip_netlist,
                                                fault_list)
        sequence = random_sequence(design, 12, seed)
        virtual_report = virtual.run(sequence)
        serial_report = serial.run(sequence)
        assert dict(virtual_report.detected) == \
            dict(serial_report.detected)
        assert virtual_report.detected_count > 0

    def test_multi_cycle_propagation_happens(self):
        """Some faults are detected strictly later than the cycle that
        excites them (the effect crosses a register)."""
        ip_netlist = ip1_block()
        design = build_sequential(ip_netlist)
        fault_list = build_fault_list(ip_netlist)
        serial = SequentialSerialFaultSimulator(design, ip_netlist,
                                                fault_list)
        sequence = random_sequence(design, 10, 42)
        report = serial.run(sequence)
        # The PO observes the *registered* state, so nothing can be
        # detected at cycle 0 via the state path; detection indices
        # beyond 0 must exist.
        assert any(index >= 1 for index in report.detected.values())

    def test_table_cache_scales_with_configurations(self):
        ip_netlist = ip1_block()
        design = build_sequential(ip_netlist)
        servant = TestabilityServant(ip_netlist,
                                     build_fault_list(ip_netlist))
        virtual = SequentialVirtualFaultSimulator(
            design, servant, functional_model_of(ip_netlist))
        virtual.run(random_sequence(design, 20, 7))
        # At most one fetch per distinct 2-bit IP input configuration.
        assert virtual.remote_table_fetches <= 4

    def test_coverage_grows_with_sequence_length(self):
        ip_netlist = parity_tree(3)
        design = build_sequential(ip_netlist)
        fault_list = build_fault_list(ip_netlist)

        def coverage(length):
            serial = SequentialSerialFaultSimulator(
                design, ip_netlist, fault_list)
            return serial.run(
                random_sequence(design, length, 5)).coverage

        assert coverage(16) >= coverage(2)
