"""Transition (gross-delay) faults: model, servant, serial vs virtual."""

import random

import pytest

from repro.bench import build_embedded
from repro.core import FaultSimulationError, Logic
from repro.faults import (SerialTransitionSimulator, TransitionFault,
                          TransitionFaultList,
                          TransitionTestabilityServant,
                          VirtualTransitionSimulator,
                          enumerate_transition_faults, reports_agree)
from repro.gates import Netlist, ip1_block, parity_tree


def buffer_netlist():
    netlist = Netlist("buf")
    netlist.add_input("a")
    netlist.add_output("o")
    netlist.add_gate("BUF", ["a"], "o")
    netlist.validate()
    return netlist


class TestModel:
    def test_names(self):
        assert TransitionFault("n1", slow_to_rise=True).name == "n1STR"
        assert TransitionFault("n1", slow_to_rise=False).name == "n1STF"

    def test_equivalent_stuck_at(self):
        str_fault = TransitionFault("n", True)
        assert str_fault.equivalent_stuck_at().value is Logic.ZERO
        stf_fault = TransitionFault("n", False)
        assert stf_fault.equivalent_stuck_at().value is Logic.ONE

    def test_enumeration(self):
        faults = enumerate_transition_faults(buffer_netlist())
        assert {f.name for f in faults} == {"aSTR", "aSTF", "oSTR",
                                            "oSTF"}

    def test_fault_list_obfuscation(self):
        fault_list = TransitionFaultList("ip", netlist=ip1_block(),
                                         obfuscate=True, prefix="x")
        assert all(name.startswith("xt") for name in fault_list.names())

    def test_unknown_name(self):
        fault_list = TransitionFaultList("ip", netlist=buffer_netlist())
        with pytest.raises(FaultSimulationError):
            fault_list.fault("ghost")


class TestSerialTransition:
    def test_buffer_pair_detection(self):
        simulator = SerialTransitionSimulator(buffer_netlist())
        # 0 -> 1 launches and detects the slow-to-rise faults.
        report = simulator.run([{"a": Logic.ZERO}, {"a": Logic.ONE}])
        assert "aSTR" in report.detected
        assert "oSTR" in report.detected
        assert "aSTF" not in report.detected

    def test_first_pattern_detects_nothing(self):
        simulator = SerialTransitionSimulator(buffer_netlist())
        report = simulator.run([{"a": Logic.ONE}])
        assert report.detected == {}

    def test_static_sequence_detects_nothing(self):
        simulator = SerialTransitionSimulator(buffer_netlist())
        report = simulator.run([{"a": Logic.ONE}] * 5)
        assert report.detected == {}

    def test_both_polarities_need_both_transitions(self):
        simulator = SerialTransitionSimulator(buffer_netlist())
        report = simulator.run([{"a": Logic.ZERO}, {"a": Logic.ONE},
                                {"a": Logic.ZERO}])
        assert {"aSTR", "aSTF", "oSTR", "oSTF"} <= set(report.detected)
        assert report.coverage == 1.0


class TestServant:
    def test_launch_condition_filters(self):
        netlist = buffer_netlist()
        servant = TransitionTestabilityServant(netlist)
        # previous a=0, current a=1: only STR faults can appear.
        table = servant.detection_table([Logic.ZERO], [Logic.ONE],
                                        servant.fault_list())
        assert table.covered_faults() == frozenset({"aSTR", "oSTR"})

    def test_no_transition_empty_table(self):
        servant = TransitionTestabilityServant(buffer_netlist())
        table = servant.detection_table([Logic.ONE], [Logic.ONE],
                                        servant.fault_list())
        assert table.rows == {}

    def test_arity_check(self):
        servant = TransitionTestabilityServant(ip1_block())
        with pytest.raises(FaultSimulationError):
            servant.detection_table([Logic.ONE], [Logic.ONE, Logic.ZERO],
                                    servant.fault_list())


class TestVirtualTransition:
    def make_experiment(self, ip_netlist, block_name="IP"):
        experiment = build_embedded(ip_netlist, block_name=block_name)
        # Rewire for the transition protocol: transition servant on the
        # same netlist, restricted to internal nets like the embedded
        # stuck-at list.
        internal_nets = set(ip_netlist.nets()) - set(ip_netlist.inputs)
        faults = {fault.name: fault
                  for fault in enumerate_transition_faults(ip_netlist)
                  if fault.net in internal_nets}
        fault_list = TransitionFaultList(ip_netlist.name, faults)
        servant = TransitionTestabilityServant(ip_netlist, fault_list)
        client = experiment.virtual.ip_blocks[0]
        client.stub = servant
        client._table_cache.clear()
        virtual = VirtualTransitionSimulator(
            experiment.virtual.circuit, experiment.virtual.inputs,
            experiment.virtual.outputs, [client])
        serial = SerialTransitionSimulator(
            experiment.serial.netlist,
            TransitionFaultList(ip_netlist.name, faults))
        return experiment, virtual, serial

    @pytest.mark.parametrize("seed", [1, 7, 23])
    def test_matches_serial_baseline(self, seed):
        from repro.gates import random_netlist
        ip_netlist = random_netlist(4, 12, 2, seed=seed)
        experiment, virtual, serial = self.make_experiment(ip_netlist)
        patterns = experiment.random_patterns(14, seed=seed + 100)
        virtual_report = virtual.run(patterns)
        serial_report = serial.run(
            experiment.patterns_as_logic(patterns))
        assert reports_agree(virtual_report, serial_report,
                             rename=lambda q: q.split(":", 1)[1])

    def test_parity_block_transitions(self):
        experiment, virtual, serial = self.make_experiment(parity_tree(4))
        patterns = experiment.random_patterns(16, seed=5)
        virtual_report = virtual.run(patterns)
        serial_report = serial.run(
            experiment.patterns_as_logic(patterns))
        assert virtual_report.detected_count > 0
        assert reports_agree(virtual_report, serial_report,
                             rename=lambda q: q.split(":", 1)[1])

    def test_table_cache_keys_on_pattern_pair(self):
        experiment, virtual, _serial = self.make_experiment(
            parity_tree(4))
        client = virtual.ip_blocks[0]
        pattern = {name: 1 for name in experiment.input_names}
        other = dict(pattern, i0=0)
        virtual.run([pattern, other, pattern, other, pattern])
        # pairs seen: (p,o), (o,p), (p,o)... -> at most 2 fetches after
        # the first (no-predecessor) pattern.
        assert client.remote_table_fetches <= 2
