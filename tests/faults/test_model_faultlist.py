"""Stuck-at fault model, enumeration and collapsing."""

import pytest

from repro.core import FaultSimulationError, Logic
from repro.faults import (FaultList, StuckAtFault, build_fault_list,
                          compose_design_fault_list, enumerate_faults)
from repro.gates import Netlist, ip1_block, parity_tree


class TestStuckAtFault:
    def test_stem_naming(self):
        assert StuckAtFault.stem("I3", 0).name == "I3sa0"
        assert StuckAtFault.stem("I3", 1).name == "I3sa1"

    def test_branch_naming(self):
        fault = StuckAtFault.branch("a", "g1", 2, 1)
        assert fault.name == "a->g1.2sa1"
        assert not fault.is_stem

    def test_value_validation(self):
        with pytest.raises(FaultSimulationError):
            StuckAtFault("n", Logic.X)

    def test_branch_needs_gate_and_pin(self):
        with pytest.raises(FaultSimulationError):
            StuckAtFault("n", Logic.ZERO, gate_name="g")
        with pytest.raises(FaultSimulationError):
            StuckAtFault("n", Logic.ZERO, pin=0)

    def test_frozen_and_hashable(self):
        a = StuckAtFault.stem("n", 0)
        assert a == StuckAtFault.stem("n", 0)
        assert hash(a) == hash(StuckAtFault.stem("n", 0))


class TestEnumeration:
    def test_counts_on_fanout_free_netlist(self):
        netlist = Netlist("chain")
        netlist.add_input("a")
        netlist.add_gate("NOT", ["a"], "n1")
        netlist.add_output("o")
        netlist.add_gate("NOT", ["n1"], "o")
        netlist.validate()
        faults = enumerate_faults(netlist)
        # 3 nets x 2 polarities, no fanout -> no branch faults.
        assert len(faults) == 6
        assert all(fault.is_stem for fault in faults)

    def test_branches_only_on_fanout_nets(self):
        netlist = ip1_block()
        faults = enumerate_faults(netlist)
        branch_nets = {fault.net for fault in faults
                       if not fault.is_stem}
        # I1, I2 (fanout 3) and I3 (fanout 2) are the fanout stems.
        assert branch_nets == {"I1", "I2", "I3"}

    def test_ip1_universe_size(self):
        # 10 nets x 2 + (3+3+2 branch pins) x 2 = 36.
        assert len(enumerate_faults(ip1_block())) == 36


class TestCollapsing:
    def test_equivalence_merges_nand_input_sa0_with_output_sa1(self):
        netlist = Netlist("nand")
        netlist.add_input("a")
        netlist.add_input("b")
        netlist.add_output("o")
        netlist.add_gate("NAND", ["a", "b"], "o")
        netlist.validate()
        collapsed = build_fault_list(netlist, collapse="equivalence")
        # A class containing asa0, bsa0 and osa1 exists.
        for name in collapsed.names():
            members = {fault.name for fault
                       in collapsed.class_of(name)}
            if "osa1" in members:
                assert {"asa0", "bsa0", "osa1"} <= members
                break
        else:
            pytest.fail("merged NAND class not found")

    def test_equivalence_chains_through_buffers(self):
        netlist = Netlist("bufchain")
        netlist.add_input("a")
        netlist.add_gate("BUF", ["a"], "n1")
        netlist.add_output("o")
        netlist.add_gate("NOT", ["n1"], "o")
        netlist.validate()
        collapsed = build_fault_list(netlist, collapse="equivalence")
        # asa0 == n1sa0 == osa1: whole chain is two classes.
        assert len(collapsed) == 2

    def test_xor_has_no_equivalences(self):
        collapsed = build_fault_list(parity_tree(4),
                                     collapse="equivalence")
        full = build_fault_list(parity_tree(4), collapse="none")
        assert len(collapsed) == len(full)

    def test_dominance_drops_output_faults(self):
        equivalence = build_fault_list(ip1_block(),
                                       collapse="equivalence")
        dominance = build_fault_list(ip1_block(), collapse="dominance")
        assert len(dominance) < len(equivalence)

    def test_dominance_keeps_primary_output_faults(self):
        netlist = Netlist("po")
        netlist.add_input("a")
        netlist.add_input("b")
        netlist.add_output("o")
        netlist.add_gate("AND", ["a", "b"], "o")
        netlist.validate()
        dominance = build_fault_list(netlist, collapse="dominance")
        all_members = {fault.name for name in dominance.names()
                       for fault in dominance.class_of(name)}
        assert "osa1" in all_members  # boundary fault retained

    def test_universe_is_preserved_by_classes(self):
        netlist = ip1_block()
        for mode in ("none", "equivalence"):
            collapsed = build_fault_list(netlist, collapse=mode)
            assert collapsed.universe_size() == 36

    def test_unknown_mode_rejected(self):
        with pytest.raises(FaultSimulationError):
            build_fault_list(ip1_block(), collapse="magic")


class TestSymbolicExport:
    def test_obfuscation_hides_net_names(self):
        collapsed = build_fault_list(ip1_block(), obfuscate=True,
                                     prefix="IP1_")
        assert all(name.startswith("IP1_f")
                   for name in collapsed.names())
        # The provider can still resolve each symbol to a real fault.
        for name in collapsed.names():
            assert collapsed.fault(name).net

    def test_unknown_symbol_rejected(self):
        collapsed = build_fault_list(ip1_block())
        with pytest.raises(FaultSimulationError):
            collapsed.fault("nonexistent")

    def test_contains_and_len(self):
        collapsed = build_fault_list(ip1_block(), collapse="none")
        assert "I3sa0" in collapsed
        assert "bogus" not in collapsed
        assert len(collapsed) == 36

    def test_compose_design_fault_list(self):
        lists = {
            "IP1": FaultList("IP1", {"f0": StuckAtFault.stem("x", 0)}),
            "IP2": FaultList("IP2", {"f0": StuckAtFault.stem("y", 1)}),
        }
        composed = compose_design_fault_list(lists)
        assert set(composed) == {"IP1:f0", "IP2:f0"}
        assert composed["IP1:f0"] == ("IP1", "f0")
