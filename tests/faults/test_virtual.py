"""The virtual fault-simulation protocol, unit scale."""

import pytest

from repro.bench import build_figure4
from repro.core import FaultSimulationError, Logic
from repro.faults import TestabilityServant, build_fault_list
from repro.gates import ip1_block


class TestServant:
    def test_fault_list_phase(self):
        servant = TestabilityServant(ip1_block())
        names = servant.fault_list()
        assert len(names) == len(servant.faults)
        assert all(isinstance(name, str) for name in names)

    def test_detection_table_arity_check(self):
        servant = TestabilityServant(ip1_block())
        with pytest.raises(FaultSimulationError, match="input bits"):
            servant.detection_table([Logic.ONE], servant.fault_list())

    def test_tables_served_counter(self):
        servant = TestabilityServant(ip1_block())
        servant.detection_table([Logic.ONE, Logic.ZERO],
                                servant.fault_list())
        assert servant.tables_served == 1


class TestClientProtocol:
    def test_phase1_composes_qualified_names(self):
        setup = build_figure4(collapse="none")
        composed = setup.simulator.build_fault_list()
        assert all(name.startswith("IP1:") for name in composed)
        assert len(composed) == len(setup.fault_list)

    def test_detection_table_cache_by_input_config(self):
        setup = build_figure4(collapse="none")
        # Two patterns with identical IP input configurations (E=1, C=0).
        setup.simulator.run([
            {"A": 1, "B": 1, "C": 0, "D": 0},
            {"A": 1, "B": 1, "C": 0, "D": 1},
        ])
        assert setup.simulator.ip_blocks[0].remote_table_fetches == 1

    def test_different_input_config_fetches_again(self):
        setup = build_figure4(collapse="none")
        setup.simulator.run([
            {"A": 1, "B": 1, "C": 0, "D": 1},
            {"A": 0, "B": 1, "C": 1, "D": 1},
        ])
        assert setup.simulator.ip_blocks[0].remote_table_fetches == 2

    def test_injection_runs_once_per_live_row(self):
        setup = build_figure4(collapse="none")
        table = setup.servant.detection_table(
            [Logic.ONE, Logic.ZERO], setup.fault_list.names())
        setup.simulator.run([{"A": 1, "B": 1, "C": 0, "D": 1}])
        assert setup.simulator.injection_runs == len(table.rows)

    def test_dropped_faults_not_requested_again(self):
        setup = build_figure4(collapse="none")
        report = setup.simulator.run(
            [{"A": 1, "B": 1, "C": 0, "D": 1}] * 3)
        # Every detection happened on the first pattern; later identical
        # patterns found nothing new.
        assert all(index == 0 for index in report.detected.values())

    def test_full_coverage_skips_further_work(self):
        setup = build_figure4(collapse="none")
        patterns = [{"A": a, "B": b, "C": c, "D": 1}
                    for a in (0, 1) for b in (0, 1) for c in (0, 1)]
        report = setup.simulator.run(patterns + patterns)
        fetches = setup.simulator.ip_blocks[0].remote_table_fetches
        # At most one fetch per distinct IP input configuration (4).
        assert fetches <= 4
        assert report.coverage > 0.8

    def test_unknown_ip_inputs_skip_the_block(self):
        """Before the IP sees defined inputs no table is requested."""
        setup = build_figure4(collapse="none")
        report = setup.simulator.run([])
        assert report.detected == {}
        assert setup.simulator.ip_blocks[0].remote_table_fetches == 0

    def test_fault_free_run_does_not_mark_anything(self):
        setup = build_figure4(collapse="none")
        report = setup.simulator.run([{"A": 0, "B": 0, "C": 0, "D": 0}])
        # Whatever is detected must come from table rows, never from the
        # fault-free comparison itself.
        good = {"IP1:" + name for name in setup.fault_list.names()}
        assert set(report.detected) <= good

    def test_missing_primary_input_rejected(self):
        setup = build_figure4(collapse="none")
        with pytest.raises(FaultSimulationError, match="missing"):
            setup.simulator.run([{"A": 1, "B": 1, "C": 0}])


class TestSimulatorReuse:
    def test_second_run_is_not_poisoned_by_stale_tables(self):
        """Regression: tables cached during run 1 were fetched against
        run 1's shrinking undetected set; run 2 resets the fault list,
        so reusing them would silently miss faults.  A reused simulator
        must detect exactly what a fresh one does."""
        reused = build_figure4(collapse="none")
        patterns = [
            {"A": 1, "B": 1, "C": 0, "D": 1},   # drops several faults
            {"A": 1, "B": 1, "C": 0, "D": 1},
        ]
        reused.simulator.run(patterns)
        second = reused.simulator.run(patterns)

        fresh = build_figure4(collapse="none")
        reference = fresh.simulator.run(patterns)
        assert dict(second.detected) == dict(reference.detected)

    def test_cache_still_effective_within_one_run(self):
        setup = build_figure4(collapse="none")
        setup.simulator.run([{"A": 1, "B": 1, "C": 0, "D": 0},
                             {"A": 1, "B": 1, "C": 0, "D": 1}])
        assert setup.simulator.ip_blocks[0].remote_table_fetches == 1


class TestCollapsedProtocol:
    def test_collapsed_lists_also_work(self):
        full = build_figure4(collapse="none")
        collapsed = build_figure4(collapse="equivalence")
        patterns = [{"A": a, "B": b, "C": c, "D": d}
                    for a in (0, 1) for b in (0, 1)
                    for c in (0, 1) for d in (0, 1)]
        full_report = full.simulator.run(patterns)
        collapsed_report = collapsed.simulator.run(patterns)
        # Expanded to the universe, both flows cover the same faults.
        full_members = set()
        for qualified in full_report.detected:
            name = qualified.split(":", 1)[1]
            full_members |= {f.name for f
                             in full.fault_list.class_of(name)}
        collapsed_members = set()
        for qualified in collapsed_report.detected:
            name = qualified.split(":", 1)[1]
            collapsed_members |= {
                f.name for f in collapsed.fault_list.class_of(name)}
        assert full_members == collapsed_members
