"""The flat serial fault simulator (baseline) and coverage reports."""

import random

import pytest

from repro.core import Logic
from repro.faults import (CoverageSummary, SerialFaultSimulator,
                          build_fault_list, expand_coverage)
from repro.gates import Netlist, ip1_block


def and_gate():
    netlist = Netlist("and2")
    netlist.add_input("a")
    netlist.add_input("b")
    netlist.add_output("o")
    netlist.add_gate("AND", ["a", "b"], "o")
    netlist.validate()
    return netlist


ALL_AND_PATTERNS = [
    {"a": Logic(a), "b": Logic(b)} for a in (0, 1) for b in (0, 1)]


class TestSerialSimulation:
    def test_exhaustive_patterns_reach_full_coverage(self):
        simulator = SerialFaultSimulator(and_gate())
        report = simulator.run(ALL_AND_PATTERNS)
        assert report.coverage == 1.0

    def test_single_pattern_detections(self):
        # Pattern (1,1): output fault-free 1; detects any fault forcing
        # the output to 0: asa0 (== osa0 class) and bsa0.
        simulator = SerialFaultSimulator(and_gate())
        report = simulator.run([{"a": Logic.ONE, "b": Logic.ONE}])
        detected_members = set()
        for name in report.detected:
            detected_members |= {
                f.name for f in simulator.fault_list.class_of(name)}
        assert {"asa0", "bsa0", "osa0"} <= detected_members
        assert "osa1" not in detected_members

    def test_detects_helper(self):
        simulator = SerialFaultSimulator(and_gate(),
                                         build_fault_list(and_gate(),
                                                          "none"))
        assert simulator.detects({"a": Logic.ONE, "b": Logic.ONE},
                                 "asa0")
        assert not simulator.detects({"a": Logic.ZERO, "b": Logic.ZERO},
                                     "asa0")

    def test_fault_dropping_records_first_pattern(self):
        simulator = SerialFaultSimulator(and_gate())
        report = simulator.run(ALL_AND_PATTERNS)
        for name, index in report.detected.items():
            # Once detected, never re-reported.
            later = [i for i, newly in enumerate(report.per_pattern)
                     if name in newly]
            assert later == [index]

    def test_no_dropping_re_detects(self):
        simulator = SerialFaultSimulator(and_gate())
        patterns = [{"a": Logic.ONE, "b": Logic.ONE}] * 3
        report = simulator.run(patterns, drop_detected=False)
        assert report.per_pattern[0] == report.per_pattern[2]

    def test_coverage_history_is_monotone(self):
        rng = random.Random(0)
        netlist = ip1_block()
        simulator = SerialFaultSimulator(netlist)
        patterns = [{"IIP1": Logic(rng.getrandbits(1)),
                     "IIP2": Logic(rng.getrandbits(1))}
                    for _ in range(10)]
        history = simulator.run(patterns).coverage_history()
        assert history == sorted(history)
        assert len(history) == 10

    def test_undetected_listing(self):
        simulator = SerialFaultSimulator(and_gate())
        report = simulator.run([{"a": Logic.ZERO, "b": Logic.ZERO}])
        undetected = report.undetected(simulator.fault_list.names())
        assert set(undetected) | set(report.detected) == \
            set(simulator.fault_list.names())


class TestCoverageExpansion:
    def test_expand_collapsed_to_universe(self):
        netlist = ip1_block()
        fault_list = build_fault_list(netlist, collapse="equivalence")
        simulator = SerialFaultSimulator(netlist, fault_list)
        patterns = [{"IIP1": Logic(a), "IIP2": Logic(b)}
                    for a in (0, 1) for b in (0, 1)]
        report = simulator.run(patterns)
        summary = expand_coverage(report, fault_list)
        assert isinstance(summary, CoverageSummary)
        assert summary.total_universe == 36
        assert summary.detected_universe >= summary.detected_collapsed
        assert 0 < summary.universe <= 1.0

    def test_empty_report(self):
        netlist = and_gate()
        fault_list = build_fault_list(netlist)
        simulator = SerialFaultSimulator(netlist, fault_list)
        report = simulator.run([])
        summary = expand_coverage(report, fault_list)
        assert summary.detected_universe == 0
        assert summary.collapsed == 0.0
