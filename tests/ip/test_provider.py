"""Provider-side publishing and servants."""

import pytest

from repro.core import IPProtectionError, RemoteError
from repro.faults import DetectionTable
from repro.gates import Netlist, parity_tree
from repro.ip import IPProvider, PowerServant
from repro.ip.provider import FunctionalServant
from repro.net import LOCALHOST
from tests.ip.conftest import WIDTH


class TestPublishing:
    def test_all_servants_bound(self, provider):
        names = provider.server.registry.names()
        assert "catalog" in names
        for suffix in ("power", "module", "timing", "test"):
            assert f"MultFastLowPower.{suffix}" in names

    def test_datasheet_contents(self, provider):
        sheet = provider.catalog.describe("MultFastLowPower")
        assert sheet["width"] == WIDTH
        assert sheet["area"] > 0
        assert sheet["delay_ns"] > 0
        assert sheet["power_constant_mw"] > 0
        assert len(sheet["estimators"]) == 3

    def test_unknown_component_described(self, provider):
        with pytest.raises(RemoteError):
            provider.catalog.describe("Nonexistent")

    def test_private_netlist_accessible_locally_only(self, provider):
        netlist = provider.private_netlist("MultFastLowPower")
        assert netlist.gate_count() > 0

    def test_private_netlist_blocked_over_rmi(self, provider):
        transport = provider.server.connect(LOCALHOST)
        # Even if someone bound it, dispatch would fail at marshalling;
        # and the accessor itself refuses inside a server context.
        provider.server.rebind("leak", provider,
                               ["private_netlist"])
        with pytest.raises(RemoteError,
                           match="IPProtectionError|MarshalError"):
            transport.invoke("leak", "private_netlist",
                             ("MultFastLowPower",))
        provider.server.registry.unbind("leak")

    def test_publish_generic_component(self):
        vendor = IPProvider("generic.provider")
        vendor.publish_netlist_component(parity_tree(4), "Parity4",
                                         ("i",), (4,))
        assert "Parity4.test" in vendor.server.registry.names()
        assert vendor.catalog.describe("Parity4")["area"] > 0


class TestPowerServant:
    def make(self, enabled=True):
        netlist = parity_tree(4)
        return PowerServant(netlist, ("i",), (4,), enabled=enabled)

    def test_sessions_are_independent(self):
        servant = self.make()
        servant.power_buffer("s1", [(0b1111,), (0b0000,)])
        servant.power_buffer("s2", [(0b1111,)])
        assert len(servant.fetch_results("s1")) == 2
        assert len(servant.fetch_results("s2")) == 1

    def test_reset_clears_session(self):
        servant = self.make()
        servant.power_buffer("s1", [(0b1111,)])
        servant.reset("s1")
        assert servant.fetch_results("s1") == []

    def test_disabled_servant_returns_zero(self):
        """The Figure 3 configuration: PPP call disabled."""
        servant = self.make(enabled=False)
        servant.power_buffer("s", [(0b1111,), (0b0101,)])
        assert servant.fetch_results("s") == [0.0, 0.0]

    def test_consecutive_patterns_matter(self):
        servant = self.make()
        # 0b0111 flips the parity output; repeating it toggles nothing.
        servant.power_buffer("s", [(0b0111,), (0b0111,)])
        powers = servant.fetch_results("s")
        assert powers[0] > 0 and powers[1] == 0.0

    def test_mark_pattern_accumulates(self):
        netlist = parity_tree(4)
        servant = PowerServant(netlist, ("i",), (4,))
        # mark_pattern is the MR-mode single-pattern push; the parity
        # tree takes one operand, the multiplier two -- use the
        # multiplier-shaped servant from a provider instead.
        vendor = IPProvider("mark.provider")
        vendor.publish_multiplier(4, training_patterns=40)
        binding = vendor.server.registry.lookup("MultFastLowPower.power")
        binding.servant.mark_pattern("s", 3, 5)
        binding.servant.mark_pattern("s", 3, 5)
        results = binding.servant.fetch_results("s")
        assert len(results) == 2 and results[1] == 0.0


class TestFunctionalServant:
    def test_emits_product_when_both_operands_known(self):
        servant = FunctionalServant(8)
        assert servant.handle_event("s", "a", 6) == []
        assert servant.handle_event("s", "b", 7) == [("o", 42)]

    def test_sessions_independent(self):
        servant = FunctionalServant(8)
        servant.handle_event("s1", "a", 2)
        assert servant.handle_event("s2", "b", 9) == []

    def test_unknown_port_rejected(self):
        servant = FunctionalServant(8)
        with pytest.raises(RemoteError):
            servant.handle_event("s", "q", 1)

    def test_product_masked_to_output_width(self):
        servant = FunctionalServant(4)
        servant.handle_event("s", "a", 15)
        [(_, product)] = servant.handle_event("s", "b", 15)
        assert product == 225  # fits in 8 bits

    def test_reset(self):
        servant = FunctionalServant(8)
        servant.handle_event("s", "a", 2)
        servant.reset("s")
        assert servant.handle_event("s", "b", 3) == []


class TestTimingServant:
    def test_timing_matches_netlist(self, provider):
        binding = provider.server.registry.lookup(
            "MultFastLowPower.timing")
        expected = provider.private_netlist(
            "MultFastLowPower").critical_path_delay()
        assert binding.servant.output_timing() == pytest.approx(expected)
