"""Protected test-sequence vault: selling tests as IP."""

import pytest

from repro.core import BillingError, Logic
from repro.faults import SerialFaultSimulator, build_fault_list
from repro.gates import c17
from repro.ip import TestSequenceVault, buy_test_sequence
from repro.net import LOCALHOST
from repro.rmi import JavaCADServer, RemoteStub


@pytest.fixture(scope="module")
def vault():
    return TestSequenceVault(c17(), price_per_pattern=2.0,
                             random_patterns=8, seed=1)


@pytest.fixture
def stub(vault):
    server = JavaCADServer("vault.provider")
    server.bind("c17.tests", vault, TestSequenceVault.REMOTE_METHODS)
    transport = server.connect(LOCALHOST)
    return RemoteStub(transport, "c17.tests",
                      TestSequenceVault.REMOTE_METHODS)


class TestPreview:
    def test_preview_discloses_value_not_patterns(self, stub):
        offer = stub.preview()
        assert offer["coverage"] == 1.0
        assert offer["patterns"] > 0
        assert offer["price_cents"] == pytest.approx(
            2.0 * offer["patterns"])
        assert "pattern" not in {k for k in offer} - {"patterns"}

    def test_preview_is_free(self, vault, stub):
        revenue_before = vault.revenue()
        stub.preview()
        assert vault.revenue() == revenue_before


class TestPurchase:
    def test_underpayment_rejected(self, stub):
        with pytest.raises(Exception, match="costs"):
            stub.purchase("cheapskate", 0.5)

    def test_purchase_releases_working_patterns(self, vault, stub):
        offer = stub.preview()
        patterns = stub.purchase("acme-corp", offer["price_cents"])
        assert len(patterns) == offer["patterns"]
        # The bought patterns really achieve the advertised coverage.
        netlist = c17()
        fault_list = build_fault_list(netlist)
        simulator = SerialFaultSimulator(netlist, fault_list)
        report = simulator.run(patterns)
        assert report.coverage == pytest.approx(offer["coverage"])

    def test_patterns_are_port_level_data(self, stub):
        offer = stub.preview()
        patterns = stub.purchase("acme-corp", offer["price_cents"])
        for pattern in patterns:
            assert all(isinstance(value, Logic)
                       for value in pattern.values())

    def test_revenue_accumulates(self, vault, stub):
        before = vault.revenue()
        offer = stub.preview()
        stub.purchase("buyer-a", offer["price_cents"])
        assert vault.revenue() == pytest.approx(
            before + offer["price_cents"])
        assert "buyer-a" in vault.buyers


class TestClientFlow:
    def test_budget_check_spends_nothing(self, vault, stub):
        before = vault.revenue()
        with pytest.raises(BillingError, match="budget"):
            buy_test_sequence(stub, "poor-corp", budget=0.1)
        assert vault.revenue() == before

    def test_successful_flow(self, stub):
        patterns = buy_test_sequence(stub, "rich-corp", budget=1000.0)
        assert patterns
