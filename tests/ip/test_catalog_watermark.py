"""Negotiation and watermarking."""

import pytest

from repro.core import EstimationError, IPProtectionError, Logic
from repro.gates import NetlistSimulator, array_multiplier, parity_tree
from repro.ip import (EstimatorOffer, Negotiation, ProviderConnection,
                      embed_watermark, verify_watermark)
from repro.net import LOCALHOST


class TestNegotiation:
    @pytest.fixture
    def negotiation(self, provider):
        connection = ProviderConnection(provider, LOCALHOST)
        return Negotiation(connection, "MultFastLowPower")

    def test_offers_match_datasheet(self, negotiation):
        offers = negotiation.offers()
        assert [offer.type for offer in offers] == \
            ["constant", "linear-regression", "gate-level-toggle"]

    def test_select_most_accurate(self, negotiation):
        assert negotiation.select().type == "gate-level-toggle"

    def test_select_under_fee_cap(self, negotiation):
        assert negotiation.select(max_cost=0.0).type == \
            "linear-regression"

    def test_select_local_only(self, negotiation):
        assert not negotiation.select(local_only=True).remote

    def test_impossible_constraints_raise(self, negotiation):
        with pytest.raises(EstimationError):
            negotiation.select(max_error=1.0)

    def test_session_fee_projection(self, negotiation):
        offer = negotiation.select()
        assert negotiation.estimated_session_fee(offer, 100) == \
            pytest.approx(offer.cost_cents_per_pattern * 100)

    def test_offer_from_wire(self):
        offer = EstimatorOffer.from_wire({
            "type": "t", "avg_error_pct": 1.0, "rms_error_pct": 2.0,
            "cost_cents_per_pattern": 0.5, "cpu_s_per_pattern": 3.0,
            "remote": True, "unpredictable_time": True})
        assert offer.remote and offer.unpredictable_time


class TestWatermark:
    def test_functional_equivalence(self):
        original = array_multiplier(3, name="wm")
        marked = embed_watermark(original, key="k1")
        sim_original = NetlistSimulator(original)
        sim_marked = NetlistSimulator(marked)
        for word in range(64):
            assert sim_original.evaluate_int(word)["p5"] == \
                sim_marked.evaluate_int(word)["p5"]
            assert sim_original.evaluate_int(word)["p0"] == \
                sim_marked.evaluate_int(word)["p0"]

    def test_verification_with_key(self):
        marked = embed_watermark(array_multiplier(3, name="wm"),
                                 key="vendor-key")
        assert verify_watermark(marked, "vendor-key")

    def test_wrong_key_fails(self):
        marked = embed_watermark(array_multiplier(3, name="wm"),
                                 key="vendor-key")
        assert not verify_watermark(marked, "forged-key") or \
            _keys_collide(marked)

    def test_unmarked_netlist_fails(self):
        assert not verify_watermark(array_multiplier(3, name="wm"),
                                    "vendor-key")

    def test_gate_overhead_is_two_per_bit(self):
        original = array_multiplier(3, name="wm")
        marked = embed_watermark(original, key="k", bits=8)
        assert marked.gate_count() == original.gate_count() + 16

    def test_too_small_netlist_rejected(self):
        tiny = parity_tree(2, name="tiny")
        with pytest.raises(IPProtectionError, match="internal nets"):
            embed_watermark(tiny, key="k", bits=8)

    def test_deterministic_embedding(self):
        first = embed_watermark(array_multiplier(3, name="wm"), key="k")
        second = embed_watermark(array_multiplier(3, name="wm"), key="k")
        assert [g.name for g in first.gates] == \
            [g.name for g in second.gates]


def _keys_collide(marked):  # pragma: no cover - astronomically unlikely
    return False
