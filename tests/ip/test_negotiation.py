"""Interactive client-server negotiation of estimator fees."""

import pytest

from repro.core import BillingError, RemoteError
from repro.ip import (InteractiveNegotiation, NegotiationOutcome,
                      NegotiationServant)
from repro.net import LOCALHOST
from repro.rmi import JavaCADServer, RemoteStub


def make_stub(servant):
    server = JavaCADServer("negotiation.provider")
    server.bind("mult.negotiate", servant,
                NegotiationServant.REMOTE_METHODS)
    transport = server.connect(LOCALHOST)
    return RemoteStub(transport, "mult.negotiate",
                      NegotiationServant.REMOTE_METHODS)


class TestServantPolicy:
    def test_opens_at_list_price(self):
        servant = NegotiationServant(list_price=0.10)
        session = servant.open_session(volume=100)
        assert servant.quote(session) == pytest.approx(0.10)

    def test_concession_is_bounded(self):
        servant = NegotiationServant(list_price=0.10, concession=0.15)
        session = servant.open_session(volume=100)
        new_quote = servant.counter_offer(session, 0.01)
        assert new_quote == pytest.approx(0.10 * 0.85)

    def test_never_below_floor(self):
        servant = NegotiationServant(list_price=0.10, floor_fraction=0.6)
        session = servant.open_session(volume=100)
        quote = 0.10
        for _ in range(4):
            quote = servant.counter_offer(session, 0.0001)
        assert quote >= 0.06 - 1e-12

    def test_volume_halves_the_floor(self):
        servant = NegotiationServant(list_price=0.10, floor_fraction=0.6,
                                     volume_break=1000)
        small = servant.open_session(volume=10)
        large = servant.open_session(volume=5000)
        for _ in range(5):
            small_quote = servant.counter_offer(small, 0.0)
        servant2 = NegotiationServant(list_price=0.10,
                                      floor_fraction=0.6,
                                      volume_break=1000, max_rounds=20)
        large = servant2.open_session(volume=5000)
        for _ in range(20):
            large_quote = servant2.counter_offer(large, 0.0)
        assert large_quote < small_quote

    def test_round_limit(self):
        servant = NegotiationServant(list_price=0.10, max_rounds=2)
        session = servant.open_session(volume=10)
        servant.counter_offer(session, 0.01)
        servant.counter_offer(session, 0.01)
        with pytest.raises(RemoteError, match="round limit"):
            servant.counter_offer(session, 0.01)

    def test_closed_session_rejected(self):
        servant = NegotiationServant(list_price=0.10)
        session = servant.open_session(volume=10)
        servant.accept(session)
        with pytest.raises(RemoteError, match="closed"):
            servant.quote(session)

    def test_unknown_session(self):
        servant = NegotiationServant(list_price=0.10)
        with pytest.raises(RemoteError, match="unknown"):
            servant.quote("nope")

    def test_invalid_volume(self):
        servant = NegotiationServant(list_price=0.10)
        with pytest.raises(RemoteError):
            servant.open_session(volume=0)


class TestInteractiveClient:
    def test_reachable_target_gets_a_deal(self):
        stub = make_stub(NegotiationServant(list_price=0.10,
                                            floor_fraction=0.5))
        negotiation = InteractiveNegotiation(stub, volume=200)
        outcome = negotiation.negotiate(target_price=0.08)
        assert outcome.accepted
        assert outcome.price_per_pattern <= 0.08 * 1.10
        assert outcome.total_for(100) == pytest.approx(
            outcome.price_per_pattern * 100)

    def test_unreachable_target_declines(self):
        stub = make_stub(NegotiationServant(list_price=0.10,
                                            floor_fraction=0.9))
        negotiation = InteractiveNegotiation(stub, volume=10)
        outcome = negotiation.negotiate(target_price=0.01)
        assert not outcome.accepted
        assert outcome.price_per_pattern is None
        with pytest.raises(BillingError):
            outcome.total_for(10)

    def test_generous_target_accepts_immediately(self):
        stub = make_stub(NegotiationServant(list_price=0.10))
        negotiation = InteractiveNegotiation(stub, volume=10)
        outcome = negotiation.negotiate(target_price=0.2)
        assert outcome.accepted
        assert outcome.rounds == 1
        assert outcome.price_per_pattern == pytest.approx(0.10)

    def test_runs_over_rmi_transport(self):
        """The whole protocol crosses the RMI layer (marshalled floats
        and strings only)."""
        stub = make_stub(NegotiationServant(list_price=0.10,
                                            floor_fraction=0.4,
                                            max_rounds=10))
        outcome = InteractiveNegotiation(stub, volume=100).negotiate(
            target_price=0.05, max_rounds=10)
        assert isinstance(outcome, NegotiationOutcome)
        assert outcome.accepted
