"""Purchase, licensing and leak forensics."""

import pytest

from repro.core import BillingError, Logic
from repro.gates import NetlistSimulator, array_multiplier, write_bench
from repro.ip import (ComponentLicense, LicenseServant,
                      purchase_component)
from repro.net import LOCALHOST
from repro.rmi import JavaCADServer, RemoteStub


@pytest.fixture
def desk():
    netlist = array_multiplier(3, name="Mult3")
    return LicenseServant(netlist, price_cents=500.0,
                          provider_secret="vendor-master-key")


@pytest.fixture
def stub(desk):
    server = JavaCADServer("license.provider")
    server.bind("mult.sales", desk, LicenseServant.REMOTE_METHODS)
    return RemoteStub(server.connect(LOCALHOST), "mult.sales",
                      LicenseServant.REMOTE_METHODS)


class TestQuoteAndPurchase:
    def test_quote_is_structure_free(self, stub):
        offer = stub.quote()
        assert offer["price_cents"] == 500.0
        assert offer["gates"] > 0
        assert "implementation" not in offer

    def test_underpayment_rejected(self, stub, desk):
        with pytest.raises(Exception, match="costs"):
            stub.purchase("cheapskate", 1.0)
        assert desk.revenue == 0.0

    def test_purchase_delivers_working_implementation(self, stub):
        license_, netlist = purchase_component(stub, "acme", 1000.0)
        assert license_.buyer == "acme"
        simulator = NetlistSimulator(netlist)
        reference = NetlistSimulator(array_multiplier(3, name="Mult3"))
        for word in range(64):
            for out in netlist.outputs:
                assert simulator.evaluate_int(word)[out] == \
                    reference.evaluate_int(word)[out]

    def test_budget_check_spends_nothing(self, stub, desk):
        with pytest.raises(BillingError, match="budget"):
            purchase_component(stub, "poor", 1.0)
        assert desk.revenue == 0.0

    def test_revenue_and_buyers(self, stub, desk):
        purchase_component(stub, "first", 1000.0)
        purchase_component(stub, "second", 1000.0)
        assert desk.revenue == 1000.0
        assert desk.buyers == ("first", "second")


class TestLicenses:
    def test_issued_license_verifies(self, stub):
        license_, _netlist = purchase_component(stub, "acme", 1000.0)
        assert stub.verify(license_.as_wire())

    def test_forged_license_fails(self, stub):
        forged = ComponentLicense("Mult3", "acme", "00" * 32)
        assert not stub.verify(forged.as_wire())

    def test_license_bound_to_buyer(self, stub):
        license_, _netlist = purchase_component(stub, "acme", 1000.0)
        stolen = ComponentLicense(license_.component, "impostor",
                                  license_.key)
        assert not stub.verify(stolen.as_wire())


class TestLeakForensics:
    def test_leak_attributed_to_the_right_buyer(self, desk, stub):
        _la, netlist_a = purchase_component(stub, "acme", 1000.0)
        _lb, netlist_b = purchase_component(stub, "bravo", 1000.0)
        assert desk.identify_leak(write_bench(netlist_a)) == "acme"
        assert desk.identify_leak(write_bench(netlist_b)) == "bravo"

    def test_fingerprints_differ_per_buyer(self, stub):
        _la, netlist_a = purchase_component(stub, "acme", 1000.0)
        _lb, netlist_b = purchase_component(stub, "bravo", 1000.0)
        assert write_bench(netlist_a) != write_bench(netlist_b)

    def test_pristine_master_is_not_attributed(self, desk, stub):
        purchase_component(stub, "acme", 1000.0)
        pristine = write_bench(array_multiplier(3, name="Mult3"))
        assert desk.identify_leak(pristine) is None

    def test_garbage_leak_is_not_attributed(self, desk):
        assert desk.identify_leak("not a bench file at all") is None

    def test_fingerprint_survives_a_bench_roundtrip(self, desk, stub):
        """Re-serialization does not wash the fingerprint out."""
        from repro.gates import read_bench
        _l, netlist = purchase_component(stub, "acme", 1000.0)
        laundered = write_bench(read_bench(write_bench(netlist),
                                           name="Mult3"))
        assert desk.identify_leak(laundered) == "acme"
