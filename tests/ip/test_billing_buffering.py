"""Billing accounts and pattern buffering."""

import pytest

from repro.core import BillingError
from repro.estimation import ConstantEstimator
from repro.ip import BillingAccount, BufferedRemoteEstimation, \
    PatternBuffer


def paid_estimator(cost):
    return ConstantEstimator("average_power", 1.0, name="paid",
                             cost=cost)


class TestBillingAccount:
    def test_charges_accumulate(self):
        account = BillingAccount()
        estimator = paid_estimator(0.1)
        for _ in range(5):
            account.charge(estimator)
        assert account.total == pytest.approx(0.5)
        assert len(account.ledger) == 5

    def test_free_estimators_not_ledgered(self):
        account = BillingAccount()
        account.charge(paid_estimator(0.0))
        assert account.total == 0.0 and account.ledger == ()

    def test_budget_enforced(self):
        account = BillingAccount(budget=0.25)
        estimator = paid_estimator(0.1)
        account.charge(estimator)
        account.charge(estimator)
        with pytest.raises(BillingError, match="budget"):
            account.charge(estimator)
        assert account.total == pytest.approx(0.2)  # failed charge undone

    def test_negative_budget_rejected(self):
        with pytest.raises(BillingError):
            BillingAccount(budget=-1)

    def test_by_estimator_grouping(self):
        account = BillingAccount()
        account.charge(paid_estimator(0.1))
        account.charge(ConstantEstimator("area", 0.0, name="other",
                                         cost=0.3))
        grouped = account.by_estimator()
        assert grouped["paid"] == pytest.approx(0.1)
        assert grouped["other"] == pytest.approx(0.3)

    def test_ledger_records_module(self):
        class FakeModule:
            name = "MULT"

        account = BillingAccount()
        account.charge(paid_estimator(0.1), module=FakeModule())
        assert account.ledger[0].module == "MULT"


class TestPatternBuffer:
    def test_flushes_at_capacity(self):
        batches = []
        buffer = PatternBuffer(3, batches.append)
        for item in range(7):
            buffer.add(item)
        assert batches == [[0, 1, 2], [3, 4, 5]]
        assert buffer.pending == 1
        buffer.drain()
        assert batches[-1] == [6]
        assert buffer.flushes == 3

    def test_capacity_one_flushes_immediately(self):
        batches = []
        buffer = PatternBuffer(1, batches.append)
        buffer.add("x")
        assert batches == [["x"]]
        assert buffer.pending == 0

    def test_drain_empty_is_noop(self):
        batches = []
        buffer = PatternBuffer(4, batches.append)
        buffer.drain()
        assert batches == []

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            PatternBuffer(0, lambda batch: None)

    def test_items_seen_counter(self):
        buffer = PatternBuffer(10, lambda batch: None)
        for item in range(4):
            buffer.add(item)
        assert buffer.items_seen == 4


class FakeStub:
    def __init__(self):
        self.calls = []
        self.results = {"s": [1.0, 2.0]}

    def invoke(self, method, *args, oneway=False):
        self.calls.append((method, args, oneway))
        if method == "fetch_results":
            return self.results[args[0]]
        return None


class TestBufferedRemoteEstimation:
    def test_push_flush_collect(self):
        stub = FakeStub()
        pipeline = BufferedRemoteEstimation(stub, "s", buffer_size=2)
        for pattern in [(1, 2), (3, 4), (5, 6)]:
            pipeline.push(pattern)
        results = pipeline.collect()
        assert results == [1.0, 2.0]
        methods = [call[0] for call in stub.calls]
        assert methods == ["power_buffer", "power_buffer",
                           "fetch_results"]
        # First flush carried the first two patterns.
        assert stub.calls[0][1] == ("s", [(1, 2), (3, 4)])
        assert pipeline.remote_calls == 2

    def test_collect_without_patterns(self):
        stub = FakeStub()
        pipeline = BufferedRemoteEstimation(stub, "s", buffer_size=5)
        assert pipeline.collect() == [1.0, 2.0]
        assert [call[0] for call in stub.calls] == ["fetch_results"]
