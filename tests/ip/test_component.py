"""Client-side IP components: public parts, connections, MR mode."""

import pytest

from repro.core import (Circuit, DesignError, PatternPrimaryInput,
                        PrimaryOutput, SimulationController, Word,
                        WordConnector)
from repro.estimation import (AREA, AVERAGE_POWER, DELAY, ByName,
                              MaxAccuracy, PreferLocal, SetupController)
from repro.ip import MultFastLowPower, ProviderConnection
from repro.net import LOCALHOST, VirtualClock
from tests.ip.conftest import WIDTH


def build_design(provider, remote_functional=False, patterns=(3, 5),
                 buffer_size=2):
    clock = VirtualClock()
    connection = ProviderConnection(provider, LOCALHOST, clock=clock)
    a, b = WordConnector(WIDTH), WordConnector(WIDTH)
    o = WordConnector(2 * WIDTH)
    ina = PatternPrimaryInput(WIDTH, [p for p in patterns], a, name="INA")
    inb = PatternPrimaryInput(WIDTH, [p + 1 for p in patterns], b,
                              name="INB")
    mult = MultFastLowPower(WIDTH, a, b, o, connection,
                            remote_functional=remote_functional,
                            buffer_size=buffer_size, name="MULT")
    out = PrimaryOutput(2 * WIDTH, o, name="OUT")
    circuit = Circuit(ina, inb, mult, out)
    return circuit, mult, out, connection


class TestProviderConnection:
    def test_catalog_access(self, provider):
        connection = ProviderConnection(provider, LOCALHOST)
        assert connection.list_components() == ["MultFastLowPower"]
        sheet = connection.describe("MultFastLowPower")
        assert sheet["width"] == WIDTH

    def test_sessions_are_unique(self, provider):
        first = ProviderConnection(provider, LOCALHOST)
        second = ProviderConnection(provider, LOCALHOST)
        assert first.session != second.session

    def test_default_policy_is_locked(self, provider):
        connection = ProviderConnection(provider, LOCALHOST)
        assert not connection.policy.trusted
        assert connection.policy.provider_host == "fixture.provider"


class TestPublicPart:
    def test_local_functional_model(self, provider):
        circuit, _mult, out, _conn = build_design(provider)
        controller = SimulationController(circuit)
        controller.start()
        products = [v.value for _t, v in out.trace(controller.context)
                    if v.known]
        assert products[-1] == 5 * 6
        assert 3 * 4 in products

    def test_width_mismatch_rejected(self, provider):
        connection = ProviderConnection(provider, LOCALHOST)
        a, b = WordConnector(4), WordConnector(4)
        o = WordConnector(8)
        with pytest.raises(DesignError, match="published for width"):
            MultFastLowPower(4, a, b, o, connection)

    def test_three_power_estimators_registered(self, provider):
        circuit, mult, _out, _conn = build_design(provider)
        names = {est.name
                 for est in mult.candidate_estimators(AVERAGE_POWER.name)}
        assert names == {"constant-power", "linreg-power",
                         "gate-level-toggle"}

    def test_static_estimators_from_datasheet(self, provider):
        _circuit, mult, _out, _conn = build_design(provider)
        area = mult.candidate_estimators(AREA.name)[0]
        assert area.name == "datasheet-area"
        delay = mult.candidate_estimators(DELAY.name)[0]
        assert delay.name == "datasheet-delay"

    def test_static_scoap_testability_estimator(self, provider):
        """The data sheet carries boundary SCOAP numbers -- the paper's
        precharacterized static testability estimate -- and the public
        part exposes them as a candidate testability estimator."""
        from repro.estimation import TESTABILITY
        _circuit, mult, _out, _conn = build_design(provider)
        scoap = mult.candidate_estimators(TESTABILITY.name)[0]
        assert scoap.name == "datasheet-scoap"
        summary = mult.datasheet["scoap_boundary"]
        # Entries for every boundary net, difficulty only, no structure.
        assert all(set(entry) == {"cc0", "cc1", "co"}
                   for entry in summary.values())
        assert mult.datasheet["scoap_hardest_effort"] > 0

    def test_accurate_timing_remote_method(self, provider):
        _circuit, mult, _out, _conn = build_design(provider)
        timing = mult.accurate_timing()
        assert timing == pytest.approx(provider.private_netlist(
            "MultFastLowPower").critical_path_delay())
        # The data-sheet delay is only an estimate of the remote truth.
        sheet_delay = mult.datasheet["delay_ns"]
        assert timing == pytest.approx(sheet_delay)


class TestRemoteEstimation:
    def test_buffered_power_collection(self, provider):
        circuit, mult, _out, connection = build_design(
            provider, patterns=(1, 2, 3, 4, 5), buffer_size=2)
        setup = SetupController()
        setup.set(AVERAGE_POWER, ByName("gate-level-toggle"))
        setup.apply(circuit)
        controller = SimulationController(circuit, setup=setup,
                                          clock=connection.clock)
        controller.start()
        powers = mult.collect_power(controller.context)
        assert len(powers) == 5
        assert any(p > 0 for p in powers)

    def test_prefer_local_avoids_remote(self, provider):
        circuit, mult, _out, connection = build_design(provider)
        setup = SetupController()
        setup.set(AVERAGE_POWER, PreferLocal())
        setup.apply(circuit)
        chosen = setup.chosen_estimator(mult, AVERAGE_POWER.name)
        assert chosen.name == "linreg-power"
        before = connection.transport.stats.calls
        SimulationController(circuit, setup=setup).start()
        # No extra remote traffic from the estimation sweep.
        assert connection.transport.stats.calls == before

    def test_max_accuracy_picks_remote(self, provider):
        circuit, mult, _out, _conn = build_design(provider)
        setup = SetupController()
        setup.set(AVERAGE_POWER, MaxAccuracy())
        setup.apply(circuit)
        assert setup.chosen_estimator(
            mult, AVERAGE_POWER.name).name == "gate-level-toggle"


class TestRemoteFunctionalMode:
    def test_mr_matches_local_products(self, provider):
        """The MR module computes identical functional results -- just
        remotely."""
        local_circuit, _m, local_out, _c = build_design(provider)
        remote_circuit, _m2, remote_out, _c2 = build_design(
            provider, remote_functional=True)
        local_ctrl = SimulationController(local_circuit)
        local_ctrl.start()
        remote_ctrl = SimulationController(remote_circuit)
        remote_ctrl.start()
        local_products = [v.value for _t, v
                          in local_out.trace(local_ctrl.context)
                          if v.known]
        remote_products = [v.value for _t, v
                           in remote_out.trace(remote_ctrl.context)
                           if v.known]
        assert local_products == remote_products

    def test_mr_generates_remote_calls_per_event(self, provider):
        circuit, _mult, _out, connection = build_design(
            provider, remote_functional=True, patterns=(1, 2, 3))
        before = connection.transport.stats.calls
        SimulationController(circuit).start()
        # Two input events per pattern cross the wire.
        assert connection.transport.stats.calls - before >= 6

    def test_mr_power_marks_are_server_buffered(self, provider):
        circuit, mult, _out, connection = build_design(
            provider, remote_functional=True, patterns=(1, 2, 3))
        setup = SetupController()
        setup.set(AVERAGE_POWER, ByName("gate-level-toggle"))
        setup.apply(circuit)
        controller = SimulationController(circuit, setup=setup,
                                          clock=connection.clock)
        controller.start()
        powers = mult.collect_power(controller.context)
        assert len(powers) == 3
