"""Shared fixtures: a published provider is expensive to build."""

import pytest

from repro.ip import IPProvider

WIDTH = 6


@pytest.fixture(scope="session")
def provider():
    """One 6-bit multiplier provider for the whole ip test session."""
    vendor = IPProvider("fixture.provider")
    vendor.publish_multiplier(WIDTH, training_patterns=150)
    return vendor
