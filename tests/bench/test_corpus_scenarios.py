"""Table 2 scenarios over corpus benches: publish, evaluate, time."""

import pytest

from repro.bench.scenarios import (run_corpus_scenario,
                                   run_corpus_table2,
                                   shared_bench_provider)
from repro.core import Logic
from repro.gates import load_bench
from repro.gates.simulator import NetlistSimulator
from repro.ip.component import ProviderConnection
from repro.ip.provider import (BenchFunctionalServant, BitPowerServant,
                               IPProvider)
from repro.net.model import LOCALHOST, WAN


class TestPublishBench:
    def test_datasheet_describes_the_bench(self):
        provider = IPProvider()
        provider.publish_bench("s27")
        connection = ProviderConnection(provider, LOCALHOST)
        sheet = connection.describe("s27")
        assert sheet["gates"] == 10
        assert sheet["flip_flops"] == 3
        assert sheet["sequential"] is True

    def test_remote_evaluate_matches_local_simulation(self):
        provider = IPProvider()
        provider.publish_bench("c17")
        connection = ProviderConnection(provider, LOCALHOST)
        stub = connection.stub("c17.module",
                               BenchFunctionalServant.REMOTE_METHODS)
        netlist = load_bench("c17")
        simulator = NetlistSimulator(netlist)
        for value in (0, 1):
            bits = [value] * len(netlist.inputs)
            inputs = {net: Logic(bit)
                      for net, bit in zip(netlist.inputs, bits)}
            expected = [int(v) for v in simulator.outputs(inputs)]
            assert stub.evaluate(bits) == expected

    def test_power_servant_buffers_and_fetches(self):
        provider = IPProvider()
        provider.publish_bench("c17")
        connection = ProviderConnection(provider, LOCALHOST)
        stub = connection.stub("c17.power",
                               BitPowerServant.REMOTE_METHODS)
        session = connection.session
        stub.invoke_oneway("power_buffer", session,
                           [[0, 0, 0, 0, 0], [1, 1, 1, 1, 1]])
        stub.invoke_oneway("mark_bits", session, [1, 0, 1, 0, 1])
        connection.flush()
        powers = stub.fetch_results(session)
        assert len(powers) == 3
        assert all(value >= 0.0 for value in powers)

    def test_wrong_vector_width_rejected(self):
        from repro.core.errors import RemoteError

        provider = IPProvider()
        provider.publish_bench("c17")
        connection = ProviderConnection(provider, LOCALHOST)
        stub = connection.stub("c17.module",
                               BenchFunctionalServant.REMOTE_METHODS)
        with pytest.raises(RemoteError, match="input bits"):
            stub.evaluate([0, 1])


class TestCorpusScenarios:
    def test_remote_modes_agree_on_powers(self):
        """ER (local eval, buffered remote power) and MR (remote eval,
        server-side marking) see the same pattern sequence, so their
        per-pattern power lists are identical -- including sequential
        benches, whose register state threads client-side."""
        for bench in ("c17", "s27"):
            er = run_corpus_scenario("ER", bench, patterns=16,
                                     buffer_size=4)
            mr = run_corpus_scenario("MR", bench, patterns=16,
                                     buffer_size=4)
            assert er.powers == mr.powers, bench
            assert len(er.powers) == 16

    def test_mr_chats_more_than_er(self):
        er = run_corpus_scenario("ER", "s27", patterns=20,
                                 buffer_size=5)
        mr = run_corpus_scenario("MR", "s27", patterns=20,
                                 buffer_size=5)
        assert mr.round_trips > er.round_trips
        assert mr.real > er.real

    def test_wan_slower_than_localhost(self):
        local = run_corpus_scenario("MR", "s27", LOCALHOST, patterns=10)
        wan = run_corpus_scenario("MR", "s27", WAN, patterns=10)
        assert wan.real > local.real

    def test_al_has_no_remote_traffic(self):
        result = run_corpus_scenario("AL", "alu8", patterns=10)
        assert result.remote_calls == 0
        assert result.round_trips == 0
        assert result.host == "NA"

    def test_unknown_scenario_rejected(self):
        from repro.core.errors import DesignError

        with pytest.raises(DesignError, match="unknown scenario"):
            run_corpus_scenario("XX", "c17", patterns=2)

    def test_table_has_seven_rows_in_paper_order(self):
        rows = run_corpus_table2("s27", patterns=8, buffer_size=4)
        assert [row.scenario for row in rows] == \
            ["AL", "ER", "MR", "ER", "MR", "ER", "MR"]
        assert [row.host for row in rows] == \
            ["NA", "localhost", "localhost", "lan", "lan", "wan",
             "wan"]

    def test_shared_provider_memoized(self):
        assert shared_bench_provider("c17") is \
            shared_bench_provider("c17")
