"""Report formatting and virtual-time measurement helpers."""

import pytest

from repro.bench import ascii_plot, format_series, format_table, measure
from repro.net import VirtualClock


class TestFormatTable:
    def test_alignment(self):
        text = format_table(["Name", "Value"],
                            [["short", 1], ["a-much-longer-name", 22]])
        lines = text.splitlines()
        assert len(lines) == 4
        header, rule, first, second = lines
        assert header.startswith("Name")
        assert set(rule) <= {"-", " "}
        # Columns align: 'Value' column starts at the same offset.
        assert header.index("Value") == first.index("1")

    def test_empty_rows(self):
        text = format_table(["A"], [])
        assert text.splitlines()[0] == "A"

    def test_cells_stringified(self):
        text = format_table(["x"], [[3.5], [None]])
        assert "3.5" in text and "None" in text


class TestFormatSeries:
    def test_title_and_columns(self):
        text = format_series("Figure X", [(1, 2.0), (3, 4.0)],
                             ["n", "t"])
        assert text.startswith("Figure X")
        assert "n" in text and "4.0" in text


class TestAsciiPlot:
    def test_monotone_series_renders(self):
        points = [(x, 100 - 10 * x) for x in range(10)]
        plot = ascii_plot(points, width=40, height=8, label="demo")
        lines = plot.splitlines()
        assert lines[0].startswith("demo")
        assert len(lines) == 9
        assert sum(line.count("*") for line in lines[1:]) == 10
        # Decreasing series: the leftmost point sits on a higher grid
        # row (smaller index) than the rightmost point.
        grid = lines[1:]
        first_row = next(i for i, line in enumerate(grid)
                         if len(line) > 0 and line[0] == "*")
        width = max(len(line) for line in grid)
        last_row = next(i for i, line in enumerate(grid)
                        if line.ljust(width)[width - 1] == "*")
        assert first_row < last_row

    def test_single_point(self):
        plot = ascii_plot([(1.0, 1.0)])
        assert "*" in plot

    def test_empty(self):
        assert ascii_plot([]) == "(no data)"


class TestMeasure:
    def test_span_captures_deltas(self):
        clock = VirtualClock()
        clock.charge_cpu(1.0)
        with measure(clock) as span:
            clock.charge_cpu(2.0)
            clock.wait(3.0)
            clock.charge_server_cpu(0.5)
        assert span.cpu == pytest.approx(2.0)
        assert span.wall == pytest.approx(5.0)
        assert span.server_cpu == pytest.approx(0.5)

    def test_span_syncs_outstanding_async(self):
        clock = VirtualClock()
        with measure(clock) as span:
            clock.begin_async(4.0)
            clock.charge_cpu(1.0)
        # The outstanding transfer is joined at span end.
        assert span.wall == pytest.approx(4.0)

    def test_span_finalized_even_on_error(self):
        clock = VirtualClock()
        with pytest.raises(RuntimeError):
            with measure(clock) as span:
                clock.charge_cpu(1.0)
                raise RuntimeError("boom")
        assert span.cpu == pytest.approx(1.0)
