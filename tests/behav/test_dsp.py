"""Behavioural DSP pipeline modules."""

import pytest

from repro.behav import (Decimator, FIRFilter, Frame, SampleMap,
                         StreamConnector, StreamProbe, StreamSource)
from repro.core import Circuit, DesignError, SimulationController


def run_pipeline(*modules):
    controller = SimulationController(Circuit(*modules))
    controller.start()
    return controller


class TestSourceAndProbe:
    def test_frames_arrive_in_order(self):
        stream = StreamConnector()
        source = StreamSource([Frame([1]), Frame([2])], stream,
                              name="SRC")
        probe = StreamProbe(stream, name="PRB")
        controller = run_pipeline(source, probe)
        assert probe.frames(controller.context) == [Frame([1]),
                                                    Frame([2])]

    def test_samples_flatten(self):
        stream = StreamConnector()
        source = StreamSource([Frame([1, 2]), Frame([3])], stream,
                              name="SRC")
        probe = StreamProbe(stream, name="PRB")
        controller = run_pipeline(source, probe)
        assert probe.samples(controller.context) == [1, 2, 3]

    def test_period_validation(self):
        with pytest.raises(DesignError):
            StreamSource([], StreamConnector(), period=0)


class TestFIRFilter:
    def test_moving_sum(self):
        s1, s2 = StreamConnector(), StreamConnector()
        source = StreamSource([Frame([1, 2, 3, 4])], s1, name="SRC")
        fir = FIRFilter([1, 1], s1, s2, name="FIR")
        probe = StreamProbe(s2, name="PRB")
        controller = run_pipeline(source, fir, probe)
        assert probe.samples(controller.context) == [1, 3, 5, 7]

    def test_state_carries_across_frames(self):
        """Frame boundaries are invisible to the convolution."""
        def run(frames):
            s1, s2 = StreamConnector(), StreamConnector()
            source = StreamSource(frames, s1, name="SRC")
            fir = FIRFilter([1, 1, 1], s1, s2, name="FIR")
            probe = StreamProbe(s2, name="PRB")
            controller = run_pipeline(source, fir, probe)
            return probe.samples(controller.context)

        whole = run([Frame([1, 2, 3, 4, 5, 6])])
        split = run([Frame([1, 2]), Frame([3, 4, 5]), Frame([6])])
        assert whole == split

    def test_identity_filter(self):
        s1, s2 = StreamConnector(), StreamConnector()
        source = StreamSource([Frame([5, -3, 8])], s1, name="SRC")
        fir = FIRFilter([1], s1, s2, name="FIR")
        probe = StreamProbe(s2, name="PRB")
        controller = run_pipeline(source, fir, probe)
        assert probe.samples(controller.context) == [5, -3, 8]

    def test_needs_coefficients(self):
        with pytest.raises(DesignError):
            FIRFilter([], StreamConnector(), StreamConnector())


class TestDecimatorAndMap:
    def test_decimation_across_frames(self):
        s1, s2 = StreamConnector(), StreamConnector()
        source = StreamSource([Frame([0, 1, 2]), Frame([3, 4, 5])], s1,
                              name="SRC")
        decimator = Decimator(2, s1, s2, name="DEC")
        probe = StreamProbe(s2, name="PRB")
        controller = run_pipeline(source, decimator, probe)
        # Global indices 0,2,4 survive regardless of frame boundaries.
        assert probe.samples(controller.context) == [0, 2, 4]

    def test_factor_validation(self):
        with pytest.raises(DesignError):
            Decimator(0, StreamConnector(), StreamConnector())

    def test_sample_map(self):
        s1, s2 = StreamConnector(), StreamConnector()
        source = StreamSource([Frame([1, 2, 3])], s1, name="SRC")
        gain = SampleMap(lambda s: 10 * s, s1, s2, name="GAIN")
        probe = StreamProbe(s2, name="PRB")
        controller = run_pipeline(source, gain, probe)
        assert probe.samples(controller.context) == [10, 20, 30]


class TestConcurrency:
    def test_pipeline_state_is_per_scheduler(self):
        s1, s2 = StreamConnector(), StreamConnector()
        source = StreamSource([Frame([1, 2]), Frame([3, 4])], s1,
                              name="SRC")
        fir = FIRFilter([1, 1], s1, s2, name="FIR")
        probe = StreamProbe(s2, name="PRB")
        circuit = Circuit(source, fir, probe)
        first = SimulationController(circuit)
        second = SimulationController(circuit)
        threads = [first.start_async(), second.start_async()]
        for thread in threads:
            thread.join(timeout=10)
        assert probe.samples(first.context) == \
            probe.samples(second.context) == [1, 3, 5, 7]
