"""Behavioural-level frames and stream connectors."""

import pytest

from repro.behav import Frame, StreamConnector
from repro.core import ConnectionError_, Logic
from repro.rmi import marshal, unmarshal


class TestFrame:
    def test_samples_and_rate(self):
        frame = Frame([1, 2, 3], rate=8.0)
        assert frame.samples == (1, 2, 3)
        assert frame.rate == 8.0
        assert len(frame) == 3

    def test_rate_validation(self):
        with pytest.raises(ValueError):
            Frame([1], rate=0)

    def test_equality_and_hash(self):
        assert Frame([1, 2]) == Frame([1, 2])
        assert Frame([1, 2]) != Frame([1, 2], rate=2.0)
        assert hash(Frame([1])) == hash(Frame([1]))

    def test_map(self):
        assert Frame([1, -2, 3]).map(abs).samples == (1, 2, 3)

    def test_decimate(self):
        frame = Frame([0, 1, 2, 3, 4, 5], rate=6.0)
        decimated = frame.decimate(3)
        assert decimated.samples == (0, 3)
        assert decimated.rate == pytest.approx(2.0)
        with pytest.raises(ValueError):
            frame.decimate(0)

    def test_energy(self):
        assert Frame([3, 4]).energy() == 25

    def test_marshals_over_rmi(self):
        frame = Frame([10, -20, 30], rate=44.1)
        restored = unmarshal(marshal(frame))
        assert restored == frame


class TestStreamConnector:
    def test_carries_frames_only(self):
        connector = StreamConnector("s")
        connector.set_value(1, Frame([1]))
        assert connector.get_value(1) == Frame([1])
        with pytest.raises(ConnectionError_, match="Frame"):
            connector.set_value(1, Logic.ONE)

    def test_default_is_empty_frame(self):
        connector = StreamConnector("s")
        assert connector.get_value(42) == Frame(())

    def test_per_scheduler_isolation(self):
        connector = StreamConnector("s")
        connector.set_value(1, Frame([1]))
        connector.set_value(2, Frame([2]))
        assert connector.get_value(1) != connector.get_value(2)
