"""Design-level estimation reports."""

import pytest

from repro.core import (Circuit, PatternPrimaryInput, PrimaryOutput,
                        SimulationController, WordConnector)
from repro.estimation import (AREA, DELAY, ByName, ConstantEstimator,
                              MaxAccuracy, SetupController,
                              design_report)


@pytest.fixture
def evaluated():
    connector = WordConnector(8)
    source = PatternPrimaryInput(8, [1, 2], connector, name="IN")
    sink = PrimaryOutput(8, connector, name="OUT")
    source.add_estimator(ConstantEstimator(AREA.name, 100.0, name="a"))
    source.add_estimator(ConstantEstimator(DELAY.name, 7.0, name="d"))
    sink.add_estimator(ConstantEstimator(AREA.name, 5.0, name="a2"))
    sink.add_estimator(ConstantEstimator(DELAY.name, 3.0, name="d2"))
    circuit = Circuit(source, sink)
    setup = SetupController(name="report")
    setup.set(AREA, MaxAccuracy())
    setup.set(DELAY, MaxAccuracy())
    setup.apply(circuit)
    SimulationController(circuit, setup=setup).start()
    return circuit, setup


class TestDesignReport:
    def test_rows_per_component(self, evaluated):
        circuit, setup = evaluated
        report = design_report(circuit, setup)
        modules = [row.module for row in report.rows]
        assert modules == ["IN", "OUT"]

    def test_totals_respect_additivity(self, evaluated):
        circuit, setup = evaluated
        report = design_report(circuit, setup)
        assert report.total(AREA.name) == 105.0       # additive: sum
        assert report.total(DELAY.name) == 7.0        # worst case: max

    def test_render_contains_rows_and_totals(self, evaluated):
        circuit, setup = evaluated
        text = design_report(circuit, setup).render()
        assert "Component" in text
        assert "TOTAL" in text
        assert "105" in text
        assert "area (eq-gates)" in text

    def test_missing_values_render_as_dash(self):
        connector = WordConnector(8)
        source = PatternPrimaryInput(8, [1], connector, name="IN")
        sink = PrimaryOutput(8, connector, name="OUT")
        source.add_estimator(ConstantEstimator(AREA.name, 9.0,
                                               name="only"))
        circuit = Circuit(source, sink)
        setup = SetupController()
        setup.set(AREA, ByName("only"))
        setup.set(DELAY, ByName("only"))  # no delay estimators anywhere
        setup.apply(circuit)
        SimulationController(circuit, setup=setup).start()
        report = design_report(circuit, setup)
        assert report.total(DELAY.name) is None
        text = report.render()
        assert "-" in text
        assert "warnings:" in text  # null-estimator fallbacks listed

    def test_unknown_total_lookup(self, evaluated):
        circuit, setup = evaluated
        assert design_report(circuit, setup).total("nonexistent") is None
