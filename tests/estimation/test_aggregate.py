"""Aggregation helpers and numeric edge cases."""

import math

import pytest

from repro.core import (Circuit, PatternPrimaryInput, PrimaryOutput,
                        SimulationController, WordConnector)
from repro.estimation import (AREA, DELAY, ConstantEstimator,
                              MaxAccuracy, Parameter, SetupController,
                              design_metric, estimate_static)
from repro.rmi import marshal, unmarshal


def circuit_with_area(values):
    connector = WordConnector(8)
    source = PatternPrimaryInput(8, [1], connector, name="IN")
    sink = PrimaryOutput(8, connector, name="OUT")
    source.add_estimator(ConstantEstimator(AREA.name, values[0],
                                           name="a1"))
    sink.add_estimator(ConstantEstimator(AREA.name, values[1],
                                         name="a2"))
    return Circuit(source, sink)


class TestDesignMetric:
    def test_latest_value_wins(self):
        circuit = circuit_with_area([10.0, 20.0])
        setup = SetupController()
        setup.set(AREA, MaxAccuracy())
        setup.apply(circuit)
        estimate_static(circuit, setup)
        estimate_static(circuit, setup)  # a second sweep: same latest
        assert design_metric(setup.results, AREA) == 30.0

    def test_custom_parameter_defaults_additive(self):
        circuit = circuit_with_area([1.0, 2.0])
        custom = Parameter("custom_metric")
        setup = SetupController()
        setup.set(custom, MaxAccuracy())
        circuit.modules[0].add_estimator(
            ConstantEstimator("custom_metric", 5.0, name="c"))
        circuit.modules[1].add_estimator(
            ConstantEstimator("custom_metric", 7.0, name="c2"))
        setup.apply(circuit)
        estimate_static(circuit, setup)
        # Looked up by string: unknown standard parameter -> additive.
        assert design_metric(setup.results, "custom_metric") == 12.0

    def test_string_lookup_of_standard_parameter(self):
        circuit = circuit_with_area([1.0, 2.0])
        setup = SetupController()
        setup.set(DELAY, MaxAccuracy())
        circuit.modules[0].add_estimator(
            ConstantEstimator(DELAY.name, 4.0, name="d1"))
        circuit.modules[1].add_estimator(
            ConstantEstimator(DELAY.name, 9.0, name="d2"))
        setup.apply(circuit)
        estimate_static(circuit, setup)
        assert design_metric(setup.results, "delay") == 9.0  # max


class TestMarshalNumericEdges:
    @pytest.mark.parametrize("value", [0.0, -0.0, 1e-300, 1e300,
                                       2 ** 63, -(2 ** 63)])
    def test_extreme_numbers_roundtrip(self, value):
        assert unmarshal(marshal(value)) == value

    def test_nan_and_inf_behaviour_is_pinned(self):
        """Python's json emits NaN/Infinity literals and reads them
        back; the marshaller inherits that round-trip.  Pinned here so
        a change in behaviour is caught."""
        restored = unmarshal(marshal(float("inf")))
        assert restored == float("inf")
        assert math.isnan(unmarshal(marshal(float("nan"))))
