"""Estimator selection criteria."""

import pytest

from repro.estimation import (ByName, ConstantEstimator, Fastest,
                              MaxAccuracy, MinCost, PreferLocal,
                              RemoteEstimator)


def make(name, error, cost=0.0, cpu=0.0, remote=False):
    if remote:
        return RemoteEstimator("p", name, stub=None, method="m",
                               arg_builder=lambda m, c: (),
                               expected_error=error, cost=cost,
                               cpu_time=cpu)
    return ConstantEstimator("p", 0.0, name=name, expected_error=error,
                             cost=cost, cpu_time=cpu)


CANDIDATES = [
    make("datasheet", error=25.0, cost=0.0, cpu=0.0),
    make("macro", error=20.0, cost=0.0, cpu=1.0),
    make("accurate", error=10.0, cost=0.1, cpu=100.0, remote=True),
]


class TestMaxAccuracy:
    def test_picks_most_accurate(self):
        assert MaxAccuracy().choose(CANDIDATES).name == "accurate"

    def test_cost_budget_excludes(self):
        assert MaxAccuracy(cost_limit=0.0).choose(CANDIDATES).name == \
            "macro"

    def test_cpu_budget_excludes(self):
        assert MaxAccuracy(cpu_limit=0.5).choose(CANDIDATES).name == \
            "datasheet"

    def test_none_when_budgets_impossible(self):
        strict = MaxAccuracy(cost_limit=-1.0)
        assert strict.choose(CANDIDATES) is None

    def test_tie_broken_by_cost(self):
        tied = [make("cheap", 10.0, cost=0.0),
                make("pricey", 10.0, cost=5.0)]
        assert MaxAccuracy().choose(tied).name == "cheap"


class TestMinCost:
    def test_picks_cheapest(self):
        assert MinCost().choose(CANDIDATES).cost == 0.0

    def test_error_floor(self):
        assert MinCost(error_limit=15.0).choose(CANDIDATES).name == \
            "accurate"

    def test_none_when_floor_impossible(self):
        assert MinCost(error_limit=1.0).choose(CANDIDATES) is None

    def test_cost_tie_broken_by_accuracy(self):
        assert MinCost().choose(CANDIDATES).name == "macro"


class TestFastest:
    def test_picks_fastest(self):
        assert Fastest().choose(CANDIDATES).name == "datasheet"

    def test_error_floor(self):
        assert Fastest(error_limit=20.0).choose(CANDIDATES).name == \
            "macro"


class TestPreferLocal:
    def test_ignores_remote(self):
        assert PreferLocal().choose(CANDIDATES).name == "macro"

    def test_none_when_all_remote(self):
        only_remote = [make("r", 5.0, remote=True)]
        assert PreferLocal().choose(only_remote) is None


class TestByName:
    def test_finds_by_name(self):
        assert ByName("macro").choose(CANDIDATES).name == "macro"

    def test_none_for_unknown(self):
        assert ByName("ghost").choose(CANDIDATES) is None

    def test_empty_candidates(self):
        for criterion in (MaxAccuracy(), MinCost(), Fastest(),
                          PreferLocal(), ByName("x")):
            assert criterion.choose([]) is None
