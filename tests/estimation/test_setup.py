"""Setup controllers: set/apply, null fallback, results, multi-setup."""

import pytest

from repro.core import (Circuit, CompositeModule, ModuleSkeleton,
                        PatternPrimaryInput, PortDirection, PrimaryOutput,
                        SetupError, SimulationController, WordConnector)
from repro.estimation import (AREA, AVERAGE_POWER, ByName,
                              ConstantEstimator, MaxAccuracy,
                              NullEstimator, SetupController,
                              design_metric, estimate_static)


def instrumented_circuit():
    connector = WordConnector(8)
    source = PatternPrimaryInput(8, [1, 2, 3], connector, name="IN")
    sink = PrimaryOutput(8, connector, name="OUT")
    source.add_estimator(ConstantEstimator(
        AREA.name, 100.0, name="big-area", expected_error=10.0))
    source.add_estimator(ConstantEstimator(
        AREA.name, 90.0, name="small-area", expected_error=30.0))
    sink.add_estimator(ConstantEstimator(
        AREA.name, 5.0, name="sink-area", expected_error=5.0))
    return Circuit(source, sink), source, sink


class TestSetAndApply:
    def test_apply_binds_per_criterion(self):
        circuit, source, sink = instrumented_circuit()
        setup = SetupController()
        setup.set(AREA, MaxAccuracy())
        setup.apply(circuit)
        assert setup.chosen_estimator(source, AREA.name).name == \
            "big-area"
        assert setup.chosen_estimator(sink, AREA.name).name == \
            "sink-area"

    def test_set_requires_criterion_object(self):
        setup = SetupController()
        with pytest.raises(SetupError):
            setup.set(AREA, "max-accuracy")

    def test_apply_without_criteria_rejected(self):
        circuit, _s, _k = instrumented_circuit()
        with pytest.raises(SetupError, match="no criteria"):
            SetupController().apply(circuit)

    def test_null_fallback_with_warning(self):
        circuit, source, _sink = instrumented_circuit()
        setup = SetupController()
        setup.set(AVERAGE_POWER, MaxAccuracy())  # nobody has one
        setup.apply(circuit)
        assert isinstance(
            setup.chosen_estimator(source, AVERAGE_POWER.name),
            NullEstimator)
        assert any("null estimator" in warning
                   for warning in setup.warnings)

    def test_apply_to_single_module(self):
        _circuit, source, sink = instrumented_circuit()
        setup = SetupController()
        setup.set(AREA, MaxAccuracy())
        setup.apply(source)
        assert setup.chosen_estimator(source, AREA.name) is not None
        assert setup.chosen_estimator(sink, AREA.name) is None

    def test_apply_to_composite_is_hierarchical(self):
        inner = ModuleSkeleton("inner")
        inner.add_port("i", PortDirection.IN)
        inner.add_estimator(ConstantEstimator(AREA.name, 1.0,
                                              name="inner-area"))
        composite = CompositeModule(inner, name="comp")
        setup = SetupController()
        setup.set(AREA, MaxAccuracy())
        setup.apply(composite)
        assert setup.chosen_estimator(inner, AREA.name).name == \
            "inner-area"


class TestEvaluation:
    def test_results_collected_per_instant(self):
        circuit, _source, _sink = instrumented_circuit()
        setup = SetupController()
        setup.set(AREA, ByName("big-area"))
        setup.apply(circuit)
        controller = SimulationController(circuit, setup=setup)
        controller.start()
        assert setup.results.series("IN", AREA.name) == [100.0] * 3

    def test_two_setups_on_one_design(self):
        """Each module keeps a hash table keyed by setup controller, so
        different setups choose independently."""
        circuit, source, _sink = instrumented_circuit()
        accurate = SetupController(name="accurate")
        accurate.set(AREA, MaxAccuracy())
        accurate.apply(circuit)
        cheap = SetupController(name="cheap")
        cheap.set(AREA, ByName("small-area"))
        cheap.apply(circuit)
        assert accurate.chosen_estimator(source, AREA.name).name == \
            "big-area"
        assert cheap.chosen_estimator(source, AREA.name).name == \
            "small-area"

        for setup in (accurate, cheap):
            controller = SimulationController(circuit, setup=setup)
            controller.start()
        assert accurate.results.series("IN", AREA.name)[0] == 100.0
        assert cheap.results.series("IN", AREA.name)[0] == 90.0

    def test_latest_and_total(self):
        circuit, _source, _sink = instrumented_circuit()
        setup = SetupController()
        setup.set(AREA, MaxAccuracy())
        setup.apply(circuit)
        SimulationController(circuit, setup=setup).start()
        latest = setup.results.latest("IN", AREA.name)
        assert latest.value == 100.0
        # total = latest per module, summed: IN(100) + OUT(5).
        assert setup.results.total(AREA.name) == 105.0

    def test_clear(self):
        circuit, _source, _sink = instrumented_circuit()
        setup = SetupController()
        setup.set(AREA, MaxAccuracy())
        setup.apply(circuit)
        SimulationController(circuit, setup=setup).start()
        setup.results.clear()
        assert setup.results.records == ()


class TestAggregation:
    def test_design_metric_additive(self):
        circuit, _source, _sink = instrumented_circuit()
        setup = SetupController()
        setup.set(AREA, MaxAccuracy())
        setup.apply(circuit)
        estimate_static(circuit, setup)
        assert design_metric(setup.results, AREA) == 105.0

    def test_design_metric_non_additive_takes_max(self):
        from repro.estimation import DELAY
        circuit, source, sink = instrumented_circuit()
        source.add_estimator(ConstantEstimator(DELAY.name, 7.0,
                                               name="d1"))
        sink.add_estimator(ConstantEstimator(DELAY.name, 3.0, name="d2"))
        setup = SetupController()
        setup.set(DELAY, MaxAccuracy())
        setup.apply(circuit)
        estimate_static(circuit, setup)
        assert design_metric(setup.results, DELAY) == 7.0

    def test_design_metric_none_without_data(self):
        setup = SetupController()
        assert design_metric(setup.results, AREA) is None

    def test_estimate_static_needs_no_simulation(self):
        """Static estimation: one sweep, no functional events."""
        circuit, _source, _sink = instrumented_circuit()
        setup = SetupController()
        setup.set(AREA, MaxAccuracy())
        setup.apply(circuit)
        results = estimate_static(circuit, setup)
        assert len(results.for_parameter(AREA.name)) == 2
