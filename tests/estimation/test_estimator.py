"""Estimator skeletons, parameters and values."""

import pytest

from repro.core import (Circuit, EstimationError, ModuleSkeleton,
                        SimulationController)
from repro.estimation import (AREA, AVERAGE_POWER, DELAY,
                              STANDARD_PARAMETERS, CallableEstimator,
                              ConstantEstimator, EstimatorSkeleton,
                              NullEstimator, NullValue, Parameter,
                              ParamValue, RemoteEstimator)


@pytest.fixture
def ctx():
    return SimulationController(Circuit(ModuleSkeleton("m"))).context


class TestParameters:
    def test_standard_set(self):
        assert {"area", "delay", "average_power", "peak_power",
                "io_activity", "testability"} == set(STANDARD_PARAMETERS)

    def test_additivity_flags(self):
        assert AREA.additive and AVERAGE_POWER.additive
        assert not DELAY.additive

    def test_custom_parameter(self):
        custom = Parameter("noise", "mV", False)
        assert str(custom) == "noise"


class TestParamValue:
    def test_equality(self):
        a = ParamValue("area", 1.0, "g", 5.0, "e")
        assert a == ParamValue("area", 1.0, "g", 5.0, "e")
        assert a != ParamValue("area", 2.0, "g", 5.0, "e")

    def test_null_value(self):
        null = NullValue("area")
        assert null.is_null and null.value is None
        assert not ParamValue("area", 1.0).is_null


class TestSkeleton:
    def test_metadata_validation(self):
        with pytest.raises(EstimationError):
            EstimatorSkeleton("area", "e", expected_error=-1)
        with pytest.raises(EstimationError):
            EstimatorSkeleton("area", "e", cost=-1)
        with pytest.raises(EstimationError):
            EstimatorSkeleton("area", "e", cpu_time=-1)

    def test_estimation_is_abstract(self, ctx):
        with pytest.raises(NotImplementedError):
            EstimatorSkeleton("area", "e").estimate(ModuleSkeleton("m"),
                                                    ctx)

    def test_estimate_wraps_raw_values(self, ctx):
        estimator = CallableEstimator("area", "fn",
                                      lambda m, c: 42.0,
                                      expected_error=7.5, units="g")
        value = estimator.estimate(ModuleSkeleton("m"), ctx)
        assert isinstance(value, ParamValue)
        assert value.value == 42.0
        assert value.expected_error == 7.5
        assert value.estimator == "fn"

    def test_estimate_passes_through_param_values(self, ctx):
        wrapped = ParamValue("area", 9.0)
        estimator = CallableEstimator("area", "fn",
                                      lambda m, c: wrapped)
        assert estimator.estimate(ModuleSkeleton("m"), ctx) is wrapped

    def test_local_by_default(self):
        estimator = ConstantEstimator("area", 5.0)
        assert not estimator.remote
        assert not estimator.unpredictable_time


class TestNullEstimator:
    def test_always_null(self, ctx):
        estimator = NullEstimator("delay")
        value = estimator.estimate(ModuleSkeleton("m"), ctx)
        assert value.is_null and value.parameter == "delay"

    def test_free_and_instant(self):
        estimator = NullEstimator("delay")
        assert estimator.cost == 0.0 and estimator.cpu_time == 0.0


class TestRemoteEstimator:
    class FakeStub:
        def __init__(self):
            self.calls = []

        def invoke(self, method, *args, oneway=False, **kwargs):
            self.calls.append((method, args, oneway))
            return 1.25

    def test_blocking_remote_estimation(self, ctx):
        stub = self.FakeStub()
        module = ModuleSkeleton("m")
        estimator = RemoteEstimator(
            "average_power", "remote", stub, "power",
            arg_builder=lambda m, c: (m.name,))
        value = estimator.estimate(module, ctx)
        assert value.value == 1.25
        assert stub.calls == [("power", ("m",), False)]
        assert estimator.remote and estimator.unpredictable_time

    def test_oneway_returns_null(self, ctx):
        stub = self.FakeStub()
        estimator = RemoteEstimator(
            "average_power", "remote", stub, "power",
            arg_builder=lambda m, c: (), oneway=True)
        value = estimator.estimate(ModuleSkeleton("m"), ctx)
        assert value.is_null
        assert stub.calls[0][2] is True
