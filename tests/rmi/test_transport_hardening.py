"""TcpTransport failure accounting: errors counted, sockets released.

The transport must account socket-level failures (refused connections,
truncated frames, dead peers) in ``TransportStats.errors`` and drop the
cached socket so the next call reconnects cleanly.
"""

import socket
import struct
import threading

import pytest

from repro.core import RemoteError
from repro.rmi import JavaCADServer, TcpTransport
from repro.rmi.protocol import CallRequest


def _free_port():
    probe = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    probe.bind(("127.0.0.1", 0))
    port = probe.getsockname()[1]
    probe.close()
    return port


class _TruncatingServer:
    """Accepts one framed request, replies with a truncated frame."""

    def __init__(self):
        self._socket = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._socket.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._socket.bind(("127.0.0.1", 0))
        self._socket.listen(1)
        self.host, self.port = self._socket.getsockname()
        self._thread = threading.Thread(target=self._serve, daemon=True)
        self._thread.start()

    def _serve(self):
        connection, _address = self._socket.accept()
        with connection:
            # Read the request frame fully, then promise an 80-byte
            # reply but send only 4 bytes before closing.
            header = connection.recv(4)
            (length,) = struct.unpack(">I", header)
            remaining = length
            while remaining:
                chunk = connection.recv(remaining)
                if not chunk:
                    return
                remaining -= len(chunk)
            connection.sendall(struct.pack(">I", 80) + b"oops")

    def close(self):
        self._socket.close()
        self._thread.join(timeout=2.0)


class TestConnectFailures:
    def test_connection_refused_counts_an_error(self):
        transport = TcpTransport("127.0.0.1", _free_port(), timeout=1.0)
        with pytest.raises(RemoteError, match="transport failure"):
            transport.invoke("math", "add", (1, 2))
        assert transport.stats.errors == 1
        assert transport.stats.calls == 0
        assert transport._socket is None

    def test_each_refused_attempt_is_counted(self):
        transport = TcpTransport("127.0.0.1", _free_port(), timeout=1.0)
        for _ in range(3):
            with pytest.raises(RemoteError):
                transport.invoke("math", "add", (1, 2))
        assert transport.stats.errors == 3


class TestStreamFailures:
    def test_truncated_frame_counts_error_and_closes_socket(self):
        server = _TruncatingServer()
        try:
            transport = TcpTransport(server.host, server.port,
                                     timeout=2.0)
            with pytest.raises(RemoteError):
                transport.invoke("math", "add", (1, 2))
            assert transport.stats.errors == 1
            # The desynchronized socket must not be reused.
            assert transport._socket is None
        finally:
            server.close()

    def test_peer_close_before_reply_counts_error(self):
        acceptor = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        acceptor.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        acceptor.bind(("127.0.0.1", 0))
        acceptor.listen(1)
        host, port = acceptor.getsockname()

        def slam():
            connection, _address = acceptor.accept()
            connection.close()

        thread = threading.Thread(target=slam, daemon=True)
        thread.start()
        try:
            transport = TcpTransport(host, port, timeout=2.0)
            with pytest.raises(RemoteError):
                transport.invoke("math", "add", (1, 2))
            assert transport.stats.errors == 1
            assert transport._socket is None
        finally:
            thread.join(timeout=2.0)
            acceptor.close()

    def test_reconnects_cleanly_after_failure(self):
        """After an error drops the socket, a live server answers the
        next invoke on a fresh connection."""
        transport = TcpTransport("127.0.0.1", _free_port(), timeout=1.0)
        with pytest.raises(RemoteError):
            transport.invoke("math", "add", (1, 2))

        class Servant:
            def add(self, a, b):
                return a + b

        server = JavaCADServer("recover.test.provider")
        server.bind("math", Servant(), ["add"])
        host, port = server.serve_tcp()
        try:
            transport.host, transport.port = host, port
            assert transport.invoke("math", "add", (2, 3)) == 5
            assert transport.stats.errors == 1
            assert transport.stats.calls == 1
        finally:
            transport.close()
            server.stop_tcp()


class TestSuccessPathUnchanged:
    def test_successful_calls_do_not_count_errors(self):
        class Servant:
            def add(self, a, b):
                return a + b

        server = JavaCADServer("ok.test.provider")
        server.bind("math", Servant(), ["add"])
        host, port = server.serve_tcp()
        try:
            transport = TcpTransport(host, port)
            assert transport.invoke("math", "add", (1, 2)) == 3
            assert transport.stats.errors == 0
            assert transport.stats.calls == 1
        finally:
            transport.close()
            server.stop_tcp()

    def test_request_frames_still_decode(self):
        # Guard against the hardening changing the wire format.
        request = CallRequest("math", "add", (1, 2), {})
        assert CallRequest.decode(request.encode()).method == "add"
