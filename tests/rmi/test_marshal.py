"""Restricted marshaller: roundtrips, rejections, security properties."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import (Circuit, Design, Logic, MarshalError,
                        ModuleSkeleton, Word)
from repro.estimation import NullValue, ParamValue
from repro.gates import Netlist, array_multiplier
from repro.rmi import marshal, payload_size, register_value_type, unmarshal


def roundtrip(obj):
    return unmarshal(marshal(obj))


class TestRoundtrips:
    @pytest.mark.parametrize("obj", [
        None, True, False, 0, -17, 2**40, 3.25, "", "hello",
        "unicode é€"])
    def test_scalars(self, obj):
        assert roundtrip(obj) == obj

    @pytest.mark.parametrize("obj", list(Logic))
    def test_logic(self, obj):
        assert roundtrip(obj) is obj

    def test_words(self):
        assert roundtrip(Word(123, 16)) == Word(123, 16)
        unknown = roundtrip(Word.unknown(8))
        assert not unknown.known and unknown.width == 8

    def test_containers(self):
        obj = {"a": [1, (2, 3)], 4: {"n": None},
               "f": frozenset({1, 2})}
        assert roundtrip(obj) == obj

    def test_tuple_stays_tuple(self):
        assert roundtrip((1, 2)) == (1, 2)
        assert isinstance(roundtrip((1, 2)), tuple)

    def test_set_becomes_frozenset(self):
        assert roundtrip({1, 2, 3}) == frozenset({1, 2, 3})

    def test_bytes(self):
        assert roundtrip(b"\x00\xffabc") == b"\x00\xffabc"

    def test_param_values(self):
        value = ParamValue("area", 12.5, "eq-gates", 5.0, "datasheet")
        assert roundtrip(value) == value
        assert roundtrip(NullValue("power")).is_null

    @given(st.recursive(
        st.none() | st.booleans() | st.integers(-2**31, 2**31) |
        st.text(max_size=20) | st.sampled_from(list(Logic)),
        lambda children: st.lists(children, max_size=4) |
        st.dictionaries(st.text(max_size=5), children, max_size=4),
        max_leaves=20))
    def test_property_roundtrip(self, obj):
        assert roundtrip(obj) == obj


class TestRejections:
    def test_module_rejected_with_ip_message(self):
        with pytest.raises(MarshalError, match="IP protection"):
            marshal(ModuleSkeleton("secret"))

    def test_netlist_rejected_with_ip_message(self):
        with pytest.raises(MarshalError, match="netlists never cross"):
            marshal(array_multiplier(2))

    def test_circuit_and_design_rejected(self):
        module = ModuleSkeleton("m")
        with pytest.raises(MarshalError, match="IP protection"):
            marshal(Circuit(module))
        with pytest.raises(MarshalError, match="IP protection"):
            marshal(Design("d"))

    def test_gate_rejected(self):
        netlist = Netlist("n")
        netlist.add_input("a")
        gate = netlist.add_gate("BUF", ["a"], "o")
        with pytest.raises(MarshalError, match="IP protection"):
            marshal(gate)

    def test_nested_protected_object_rejected(self):
        """Hiding a module inside a container does not help."""
        with pytest.raises(MarshalError):
            marshal({"innocent": [1, 2, ModuleSkeleton("sneaky")]})

    def test_arbitrary_objects_rejected(self):
        class Custom:
            pass

        with pytest.raises(MarshalError, match="not marshallable"):
            marshal(Custom())
        with pytest.raises(MarshalError):
            marshal(lambda x: x)

    def test_deep_nesting_rejected(self):
        nested = 1
        for _ in range(40):
            nested = [nested]
        with pytest.raises(MarshalError, match="deeply nested"):
            marshal(nested)


class TestWireFormat:
    def test_corrupt_bytes_rejected(self):
        with pytest.raises(MarshalError):
            unmarshal(b"\xff\x00 not json")
        with pytest.raises(MarshalError):
            unmarshal(b"[1, 2, 3]")  # bare list is not tagged wire data

    def test_unknown_tag_rejected(self):
        with pytest.raises(MarshalError, match="unknown marshal tag"):
            unmarshal(b'{"$t": "x:bogus", "v": 1}')

    def test_no_code_execution_on_unmarshal(self):
        """The wire format is data-only; even a malicious payload just
        fails, it never executes (unlike pickle)."""
        evil = (b'{"$t": "dict", "v": [["__reduce__", '
                b'"os.system"]]}')
        result = unmarshal(evil)
        assert result == {"__reduce__": "os.system"}

    def test_payload_size_matches(self):
        obj = {"patterns": [(1, 2), (3, 4)]}
        assert payload_size(obj) == len(marshal(obj))


class TestValueTypeRegistry:
    def test_conflicting_tag_rejected(self):
        class A:
            pass

        class B:
            pass

        register_value_type("conflict-test", A, lambda a: None,
                            lambda w: A())
        with pytest.raises(MarshalError, match="already registered"):
            register_value_type("conflict-test", B, lambda b: None,
                                lambda w: B())

    def test_re_registering_same_class_ok(self):
        class C:
            pass

        register_value_type("re-reg-test", C, lambda c: None,
                            lambda w: C())
        register_value_type("re-reg-test", C, lambda c: None,
                            lambda w: C())

    def test_subclass_with_own_codec_wins(self):
        """DetectionTable subclasses ParamValue but uses its own codec."""
        from repro.core.signal import Logic
        from repro.faults import DetectionTable

        table = DetectionTable("comp", (Logic.ONE,), (Logic.ZERO,),
                               {(Logic.ONE,): {"fsa0"}})
        restored = roundtrip(table)
        assert isinstance(restored, DetectionTable)
        assert restored == table
