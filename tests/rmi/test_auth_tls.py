"""AUTH frames, TLS contexts, connect timeouts, stop_tcp shutdown."""

import os
import socket
import threading
import time

import pytest

from repro.core.errors import RemoteError
from repro.rmi import (AuthRequest, CallReply, JavaCADServer,
                       TcpTransport, WIRE_OPTIONS, client_ssl_context,
                       decode_request, server_ssl_context, wire_session)
from repro.rmi.marshal import MarshalError
from repro.rmi.transport import (DEFAULT_CONNECT_TIMEOUT,
                                 DEFAULT_TCP_TIMEOUT)

TLS_DIR = os.path.join(os.path.dirname(__file__), os.pardir, "data",
                       "tls")
CERT = os.path.join(TLS_DIR, "server.pem")
KEY = os.path.join(TLS_DIR, "server.key")


class Echo:
    def ping(self, value):
        return value + 1


def serve_echo():
    server = JavaCADServer("auth.tls.test")
    server.bind("echo", Echo(), ["ping"])
    host, port = server.serve_tcp("127.0.0.1", 0)
    return server, host, port


class TestAuthFrame:
    def test_round_trip(self):
        request = AuthRequest("hunter2")
        decoded = AuthRequest.decode(request.encode())
        assert decoded.token == "hunter2"
        assert decoded.call_id == request.call_id

    def test_decode_request_recognizes_auth(self):
        decoded = decode_request(AuthRequest("t").encode())
        assert isinstance(decoded, AuthRequest)

    def test_from_wire_rejects_other_kinds(self):
        with pytest.raises(MarshalError):
            AuthRequest.from_wire({"kind": "call", "token": "x", "id": 1})

    def test_wire_shape(self):
        wire = AuthRequest("tok", call_id=7).to_wire()
        assert wire == {"kind": "auth", "token": "tok", "id": 7}


class TestLegacyServerAuthTolerance:
    def test_blocking_server_accepts_token_clients(self):
        # The blocking door has no token store; AUTH trivially succeeds
        # so a token-configured client still interoperates.  Token
        # *enforcement* lives in repro.server.AsyncRMIServer.
        server, host, port = serve_echo()
        try:
            transport = TcpTransport(host, port, token="whatever")
            assert transport.invoke("echo", "ping", (1,), {}) == 2
            transport.close()
        finally:
            server.stop_tcp()


class TestTlsConfig:
    def test_server_context_loads_the_fixture_pair(self):
        context = server_ssl_context(CERT, KEY)
        assert context.minimum_version.name in ("TLSv1_2", "TLSv1_3")

    def test_server_context_wraps_load_failures(self):
        with pytest.raises(RemoteError, match="TLS"):
            server_ssl_context("/nonexistent.pem", "/nonexistent.key")

    def test_client_context_verifies_by_default(self):
        import ssl
        context = client_ssl_context(cafile=CERT)
        assert context.verify_mode == ssl.CERT_REQUIRED


class TestConnectTimeout:
    def test_default_is_much_shorter_than_the_call_timeout(self):
        assert DEFAULT_CONNECT_TIMEOUT < DEFAULT_TCP_TIMEOUT

    def test_transport_falls_back_to_wire_options(self):
        with wire_session(connect_timeout=0.25, rmi_timeout=9.0):
            transport = TcpTransport("127.0.0.1", 1)
            assert transport.connect_timeout == 0.25
            assert transport.timeout == 9.0

    def test_wire_session_restores_connect_timeout(self):
        before = WIRE_OPTIONS.connect_timeout
        with wire_session(connect_timeout=0.125):
            assert WIRE_OPTIONS.connect_timeout == 0.125
        assert WIRE_OPTIONS.connect_timeout == before

    def test_configure_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            WIRE_OPTIONS.configure(connect_timeout=0)

    def test_dead_endpoint_fails_fast_with_oserror_cause(self):
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()  # nobody listens here now
        transport = TcpTransport("127.0.0.1", port, connect_timeout=0.5,
                                 timeout=30.0)
        begin = time.monotonic()
        with pytest.raises(RemoteError) as excinfo:
            transport.connect()
        elapsed = time.monotonic() - begin
        assert isinstance(excinfo.value.__cause__, OSError)
        # Far below the 30s call timeout: the connect path governs.
        assert elapsed < 5.0

    def test_connect_succeeds_eagerly_against_a_live_server(self):
        server, host, port = serve_echo()
        try:
            transport = TcpTransport(host, port)
            transport.connect()
            assert transport.invoke("echo", "ping", (4,), {}) == 5
            transport.close()
        finally:
            server.stop_tcp()


class TestStopTcpShutdown:
    def test_workers_are_joined_on_stop(self):
        server, host, port = serve_echo()
        transports = [TcpTransport(host, port) for _ in range(3)]
        try:
            for index, transport in enumerate(transports):
                assert transport.invoke("echo", "ping",
                                        (index,), {}) == index + 1
            server.stop_tcp()
            assert not server._tcp_workers
            assert not server._tcp_connections
            assert server._tcp_thread is None
        finally:
            for transport in transports:
                transport.close()

    def test_stop_start_cycles_do_not_leak_threads(self):
        baseline = threading.active_count()
        for _ in range(5):
            server, host, port = serve_echo()
            transport = TcpTransport(host, port)
            assert transport.invoke("echo", "ping", (1,), {}) == 2
            transport.close()
            server.stop_tcp()
        deadline = time.monotonic() + 5
        while threading.active_count() > baseline and \
                time.monotonic() < deadline:
            time.sleep(0.02)
        assert threading.active_count() <= baseline

    def test_stop_while_clients_connected(self):
        server, host, port = serve_echo()
        transport = TcpTransport(host, port)
        assert transport.invoke("echo", "ping", (1,), {}) == 2
        server.stop_tcp()
        with pytest.raises(RemoteError):
            transport.invoke("echo", "ping", (2,), {})
        transport.close()

    def test_stop_without_clients_is_quick(self):
        server, _host, _port = serve_echo()
        begin = time.monotonic()
        server.stop_tcp()
        assert time.monotonic() - begin < 2.0
