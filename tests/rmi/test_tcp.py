"""Real TCP transport: the wire protocol across a process boundary."""

import threading

import pytest

from repro.core import RemoteError, SecurityViolationError, Word
from repro.rmi import (JavaCADServer, RemoteStub, SecurityPolicy,
                       TcpTransport)


class MathServant:
    def add(self, a, b):
        return a + b

    def mult_words(self, a, b):
        return Word(a.value * b.value, 2 * a.width)

    def fail(self):
        raise RuntimeError("nope")


@pytest.fixture
def tcp_server():
    server = JavaCADServer("tcp.test.provider")
    server.bind("math", MathServant(), ["add", "mult_words", "fail"])
    host, port = server.serve_tcp()
    yield server, host, port
    server.stop_tcp()


class TestTcpRoundtrips:
    def test_scalar_call(self, tcp_server):
        _server, host, port = tcp_server
        transport = TcpTransport(host, port)
        try:
            assert transport.invoke("math", "add", (2, 3)) == 5
        finally:
            transport.close()

    def test_word_values_cross_the_socket(self, tcp_server):
        _server, host, port = tcp_server
        transport = TcpTransport(host, port)
        try:
            result = transport.invoke("math", "mult_words",
                                      (Word(6, 8), Word(7, 8)))
            assert result == Word(42, 16)
        finally:
            transport.close()

    def test_servant_error_travels(self, tcp_server):
        _server, host, port = tcp_server
        transport = TcpTransport(host, port)
        try:
            with pytest.raises(RemoteError, match="nope"):
                transport.invoke("math", "fail")
        finally:
            transport.close()

    def test_persistent_connection_multiple_calls(self, tcp_server):
        _server, host, port = tcp_server
        transport = TcpTransport(host, port)
        try:
            for i in range(20):
                assert transport.invoke("math", "add", (i, 1)) == i + 1
            assert transport.stats.calls == 20
        finally:
            transport.close()

    def test_concurrent_clients(self, tcp_server):
        _server, host, port = tcp_server
        results = {}

        def client(index):
            transport = TcpTransport(host, port)
            try:
                results[index] = [
                    transport.invoke("math", "add", (index, i))
                    for i in range(10)]
            finally:
                transport.close()

        threads = [threading.Thread(target=client, args=(i,))
                   for i in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=10)
        for index in range(4):
            assert results[index] == [index + i for i in range(10)]

    def test_stub_over_tcp(self, tcp_server):
        _server, host, port = tcp_server
        transport = TcpTransport(host, port)
        try:
            stub = RemoteStub(transport, "math", ["add"])
            assert stub.add(10, 20) == 30
        finally:
            transport.close()


class TestTcpSecurity:
    def test_connect_back_rule(self, tcp_server):
        _server, host, port = tcp_server
        policy = SecurityPolicy("some.other.provider")
        transport = TcpTransport(host, port, policy=policy)
        with pytest.raises(SecurityViolationError):
            transport.invoke("math", "add", (1, 2))

    def test_relaxed_policy_allows(self, tcp_server):
        _server, host, port = tcp_server
        policy = SecurityPolicy("some.other.provider")
        policy.relax(hosts=[host])
        transport = TcpTransport(host, port, policy=policy)
        try:
            assert transport.invoke("math", "add", (1, 2)) == 3
        finally:
            transport.close()


class TestServerLifecycle:
    def test_double_serve_rejected(self, tcp_server):
        server, _host, _port = tcp_server
        with pytest.raises(RemoteError, match="already serving"):
            server.serve_tcp()

    def test_stop_and_restart(self):
        server = JavaCADServer("restart.test")
        server.bind("math", MathServant(), ["add"])
        _host, port1 = server.serve_tcp()
        server.stop_tcp()
        _host, port2 = server.serve_tcp()
        transport = TcpTransport("127.0.0.1", port2)
        try:
            assert transport.invoke("math", "add", (1, 1)) == 2
        finally:
            transport.close()
            server.stop_tcp()


class TestTcpBatching:
    """BATCH frames across a real socket: one frame, many calls."""

    def test_invoke_batch_over_the_socket(self, tcp_server):
        from repro.rmi.protocol import CallRequest

        _server, host, port = tcp_server
        transport = TcpTransport(host, port)
        try:
            requests = [CallRequest("math", "add", (i, i)) for i in
                        range(5)]
            replies = transport.invoke_batch(requests)
            assert [r.result for r in replies] == [0, 2, 4, 6, 8]
            assert all(r.ok for r in replies)
            assert transport.stats.calls == 1
            assert transport.stats.batches == 1
            assert transport.stats.batched_calls == 5
        finally:
            transport.close()

    def test_batching_transport_over_tcp(self, tcp_server):
        from repro.rmi import BatchingTransport

        _server, host, port = tcp_server
        transport = BatchingTransport(TcpTransport(host, port))
        try:
            transport.invoke("math", "add", (1, 1), oneway=True)
            transport.invoke("math", "add", (2, 2), oneway=True)
            assert transport.invoke("math", "add", (3, 3)) == 6
            assert transport.inner.stats.calls == 1
            assert transport.saved_round_trips == 2
        finally:
            transport.close()

    def test_batch_error_isolation_over_tcp(self, tcp_server):
        from repro.rmi.protocol import CallRequest

        _server, host, port = tcp_server
        transport = TcpTransport(host, port)
        try:
            replies = transport.invoke_batch([
                CallRequest("math", "add", (1, 1)),
                CallRequest("math", "fail"),
                CallRequest("math", "add", (2, 2)),
            ])
            assert replies[0].ok and replies[0].result == 2
            assert not replies[1].ok and "nope" in replies[1].error
            assert replies[2].ok and replies[2].result == 4
        finally:
            transport.close()

    def test_caching_transport_over_tcp(self, tcp_server):
        from repro.rmi import CachePolicy, CachingTransport, PURE_METHODS

        _server, host, port = tcp_server
        transport = CachingTransport(
            TcpTransport(host, port),
            policy=CachePolicy(methods=PURE_METHODS | {"add"}))
        try:
            assert transport.invoke("math", "add", (20, 1)) == 21
            assert transport.invoke("math", "add", (20, 1)) == 21
            assert transport.inner.stats.calls == 1
            assert transport.saved_round_trips == 1
        finally:
            transport.close()
