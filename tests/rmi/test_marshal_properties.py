"""Property-based marshalling tests (seeded random, no external deps).

Two invariants carry the whole batching + caching layer:

* ``unmarshal(marshal(x)) == x`` for every payload the restricted
  marshaller admits -- a cached reply replayed from its wire form is
  observationally identical to a fresh round trip;
* :func:`repro.cache.cache_key` is a pure function of the payload's
  *value*: equal payloads (even with different dict insertion orders)
  produce equal keys, unequal payloads produce distinct keys.
"""

import random

import pytest

from repro.cache import cache_key
from repro.core.signal import Logic, Word
from repro.rmi.marshal import marshal, unmarshal

SEEDS = [7, 19, 101]
CASES_PER_SEED = 60
MAX_DEPTH = 4


def random_payload(rng: random.Random, depth: int = 0):
    """A random value drawn from the marshaller's whitelisted types."""
    scalar_makers = [
        lambda: None,
        lambda: rng.choice([True, False]),
        lambda: rng.randint(-2 ** 40, 2 ** 40),
        lambda: rng.uniform(-1e6, 1e6),
        lambda: "".join(rng.choice("abcxyz01 _-") for _ in range(
            rng.randint(0, 12))),
        lambda: bytes(rng.getrandbits(8) for _ in range(
            rng.randint(0, 8))),
        lambda: Logic(rng.getrandbits(1)),
        lambda: Word(rng.getrandbits(8), 8),
    ]
    if depth >= MAX_DEPTH:
        return rng.choice(scalar_makers)()
    compound_makers = [
        lambda: tuple(random_payload(rng, depth + 1)
                      for _ in range(rng.randint(0, 3))),
        lambda: [random_payload(rng, depth + 1)
                 for _ in range(rng.randint(0, 3))],
        lambda: {f"k{i}": random_payload(rng, depth + 1)
                 for i in range(rng.randint(0, 3))},
    ]
    if rng.random() < 0.4:
        return rng.choice(compound_makers)()
    return rng.choice(scalar_makers)()


class TestRoundTrip:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_marshal_round_trips(self, seed):
        rng = random.Random(seed)
        for _ in range(CASES_PER_SEED):
            payload = random_payload(rng)
            assert unmarshal(marshal(payload)) == payload

    @pytest.mark.parametrize("seed", SEEDS)
    def test_double_round_trip_is_stable(self, seed):
        """Wire form of a round-tripped value equals the original wire
        form -- what lets the cache store marshalled bytes."""
        rng = random.Random(seed)
        for _ in range(CASES_PER_SEED):
            payload = random_payload(rng)
            wire = marshal(payload)
            assert marshal(unmarshal(wire)) == wire


class TestCacheKeys:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_equal_payloads_equal_keys(self, seed):
        rng = random.Random(seed)
        for _ in range(CASES_PER_SEED):
            payload = random_payload(rng)
            copied = unmarshal(marshal(payload))
            assert cache_key("obj", "method", (payload,)) == \
                cache_key("obj", "method", (copied,))

    @pytest.mark.parametrize("seed", SEEDS)
    def test_distinct_payloads_distinct_keys(self, seed):
        rng = random.Random(seed)
        seen = {}
        for _ in range(CASES_PER_SEED):
            payload = random_payload(rng)
            key = cache_key("obj", "method", (payload,))
            wire = marshal(payload)
            if key in seen:
                # Same key is only acceptable for the same wire value.
                assert seen[key] == wire
            seen[key] = wire

    def test_dict_order_is_canonicalized(self):
        forward = {"a": 1, "b": 2, "c": {"x": 1, "y": 2}}
        reverse = {"c": {"y": 2, "x": 1}, "b": 2, "a": 1}
        assert cache_key("o", "m", (forward,)) == \
            cache_key("o", "m", (reverse,))

    def test_kwargs_participate_in_the_key(self):
        assert cache_key("o", "m", (1,), {"k": 1}) != \
            cache_key("o", "m", (1,), {"k": 2})

    def test_object_and_method_scope_the_key(self):
        assert cache_key("o1", "m", (1,)) != cache_key("o2", "m", (1,))
        assert cache_key("o", "m1", (1,)) != cache_key("o", "m2", (1,))

    def test_key_prefix_supports_invalidation(self):
        key = cache_key("catalog", "describe", ("MULT",))
        assert key.startswith("catalog.describe:")
