"""CachingTransport: policy, hit semantics, coherence, error handling."""

import pytest

from repro.cache import ResponseCache
from repro.core import RemoteError, Word
from repro.net.model import LOCALHOST
from repro.rmi import (CachePolicy, CachingTransport, JavaCADServer,
                       PURE_METHODS, RemoteStub)


class CatalogServant:
    """A pure ``describe`` plus a stateful ``bump`` for contrast."""

    def __init__(self):
        self.describe_calls = 0
        self.counter = 0

    def describe(self, component):
        self.describe_calls += 1
        return {"name": component, "width": 8}

    def bump(self):
        self.counter += 1
        return self.counter

    def boom(self):
        raise ValueError("servant exploded")

    def fault_list(self):
        return ("f1", "f2")


@pytest.fixture
def servant():
    return CatalogServant()


@pytest.fixture
def server(servant):
    server = JavaCADServer("cache.provider")
    server.bind("catalog", servant,
                ["describe", "bump", "boom", "fault_list"])
    return server


def cached(server, **kwargs):
    return CachingTransport(server.connect(LOCALHOST), **kwargs)


class TestHits:
    def test_repeat_pure_call_served_from_cache(self, server, servant):
        transport = cached(server)
        first = transport.invoke("catalog", "describe", ("MULT",))
        second = transport.invoke("catalog", "describe", ("MULT",))
        assert first == second == {"name": "MULT", "width": 8}
        assert servant.describe_calls == 1
        assert transport.inner.stats.calls == 1
        assert transport.saved_round_trips == 1

    def test_hits_unmarshal_fresh_objects(self, server):
        """A hit must never alias a previous caller's result object."""
        transport = cached(server)
        first = transport.invoke("catalog", "describe", ("MULT",))
        second = transport.invoke("catalog", "describe", ("MULT",))
        assert first is not second
        first["width"] = 999
        assert transport.invoke("catalog", "describe",
                                ("MULT",))["width"] == 8

    def test_distinct_arguments_miss(self, server, servant):
        transport = cached(server)
        transport.invoke("catalog", "describe", ("A",))
        transport.invoke("catalog", "describe", ("B",))
        assert servant.describe_calls == 2

    def test_stateful_method_never_cached(self, server):
        transport = cached(server)
        assert transport.invoke("catalog", "bump") == 1
        assert transport.invoke("catalog", "bump") == 2
        assert transport.saved_round_trips == 0

    def test_oneway_never_cached(self, server, servant):
        transport = cached(server)
        transport.invoke("catalog", "describe", ("MULT",), oneway=True)
        transport.invoke("catalog", "describe", ("MULT",), oneway=True)
        assert servant.describe_calls == 2
        assert len(transport.cache) == 0


class TestPolicy:
    def test_default_policy_is_the_pure_whitelist(self):
        policy = CachePolicy()
        assert policy.is_cacheable("anything", "describe")
        assert policy.is_cacheable("anything", "fault_list")
        assert not policy.is_cacheable("anything", "bump")
        assert "power_buffer" not in PURE_METHODS
        assert "handle_event" not in PURE_METHODS

    def test_object_restriction(self, server, servant):
        policy = CachePolicy(objects=frozenset({"other"}))
        transport = cached(server, policy=policy)
        transport.invoke("catalog", "describe", ("MULT",))
        transport.invoke("catalog", "describe", ("MULT",))
        assert servant.describe_calls == 2

    def test_extra_methods_can_be_whitelisted(self, server, servant):
        policy = CachePolicy(methods=PURE_METHODS | {"bump"})
        transport = cached(server, policy=policy)
        assert transport.invoke("catalog", "bump") == 1
        assert transport.invoke("catalog", "bump") == 1  # memoized

    def test_word_arguments_are_content_addressed(self, server, servant):
        transport = cached(server)
        transport.invoke("catalog", "describe", (Word(3, 8),))
        transport.invoke("catalog", "describe", (Word(3, 8),))
        transport.invoke("catalog", "describe", (Word(4, 8),))
        assert servant.describe_calls == 2


class TestErrors:
    def test_errors_are_never_memoized(self, server):
        policy = CachePolicy(methods=PURE_METHODS | {"boom"})
        transport = cached(server, policy=policy)
        for _ in range(2):
            with pytest.raises(RemoteError, match="servant exploded"):
                transport.invoke("catalog", "boom")
        assert transport.stats.errors == 2
        assert transport.inner.stats.calls == 2
        assert len(transport.cache) == 0


class TestCoherence:
    def test_invalidate_object_forces_refetch(self, server, servant):
        transport = cached(server)
        transport.invoke("catalog", "describe", ("MULT",))
        assert transport.invalidate("catalog") == 1
        transport.invoke("catalog", "describe", ("MULT",))
        assert servant.describe_calls == 2

    def test_invalidate_is_method_scoped(self, server, servant):
        transport = cached(server)
        transport.invoke("catalog", "describe", ("MULT",))
        transport.invoke("catalog", "fault_list")
        assert transport.invalidate("catalog", "fault_list") == 1
        transport.invoke("catalog", "describe", ("MULT",))
        assert servant.describe_calls == 1

    def test_clear_cache(self, server, servant):
        transport = cached(server)
        transport.invoke("catalog", "describe", ("MULT",))
        transport.invoke("catalog", "fault_list")
        assert transport.clear_cache() == 2
        transport.invoke("catalog", "describe", ("MULT",))
        assert servant.describe_calls == 2

    def test_shared_cache_across_transports(self, server, servant):
        shared = ResponseCache()
        first = cached(server, cache=shared)
        second = cached(server, cache=shared)
        first.invoke("catalog", "describe", ("MULT",))
        second.invoke("catalog", "describe", ("MULT",))
        assert servant.describe_calls == 1


class TestStubIntegration:
    def test_stub_over_caching_transport(self, server, servant):
        transport = cached(server)
        stub = RemoteStub(transport, "catalog",
                          ["describe", "fault_list"])
        assert stub.describe("MULT") == stub.describe("MULT")
        assert stub.fault_list() == ("f1", "f2")
        assert stub.calls == 3
        assert servant.describe_calls == 1
