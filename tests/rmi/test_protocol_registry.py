"""Wire protocol messages and the naming registry."""

import pytest

from repro.core import MarshalError, RemoteError, Word
from repro.rmi import Binding, CallReply, CallRequest, Registry


class TestCallRequest:
    def test_roundtrip(self):
        request = CallRequest("obj", "method", (1, Word(2, 8)),
                              {"k": "v"}, oneway=True)
        decoded = CallRequest.decode(request.encode())
        assert decoded.object_name == "obj"
        assert decoded.method == "method"
        assert decoded.args == (1, Word(2, 8))
        assert decoded.kwargs == {"k": "v"}
        assert decoded.call_id == request.call_id
        assert decoded.oneway

    def test_call_ids_unique(self):
        assert CallRequest("o", "m").call_id != \
            CallRequest("o", "m").call_id

    def test_unmarshallable_argument_rejected_at_encode(self):
        from repro.core import ModuleSkeleton
        request = CallRequest("o", "m", (ModuleSkeleton("x"),))
        with pytest.raises(MarshalError):
            request.encode()

    def test_decode_rejects_wrong_kind(self):
        reply = CallReply(1, ok=True, result=None)
        with pytest.raises(MarshalError, match="not a call request"):
            CallRequest.decode(reply.encode())


class TestCallReply:
    def test_ok_roundtrip(self):
        reply = CallReply(7, ok=True, result=[1, 2])
        decoded = CallReply.decode(reply.encode())
        assert decoded.ok and decoded.result == [1, 2]
        assert decoded.call_id == 7

    def test_error_roundtrip(self):
        reply = CallReply(8, ok=False, error="Boom: it broke")
        decoded = CallReply.decode(reply.encode())
        assert not decoded.ok and "Boom" in decoded.error

    def test_decode_rejects_wrong_kind(self):
        with pytest.raises(MarshalError, match="not a call reply"):
            CallReply.decode(CallRequest("o", "m").encode())


class Servant:
    def visible(self):
        return "ok"

    def hidden(self):  # pragma: no cover - must never be reachable
        return "secret"


class TestRegistry:
    def test_bind_and_lookup(self):
        registry = Registry()
        servant = Servant()
        binding = registry.bind("obj", servant, ["visible"])
        assert registry.lookup("obj") is binding
        assert binding.servant is servant

    def test_bind_refuses_overwrite(self):
        registry = Registry()
        registry.bind("obj", Servant(), ["visible"])
        with pytest.raises(RemoteError, match="already bound"):
            registry.bind("obj", Servant(), ["visible"])

    def test_rebind_overwrites(self):
        registry = Registry()
        registry.bind("obj", Servant(), ["visible"])
        replacement = Servant()
        registry.rebind("obj", replacement, ["visible"])
        assert registry.lookup("obj").servant is replacement

    def test_unbind(self):
        registry = Registry()
        registry.bind("obj", Servant(), ["visible"])
        registry.unbind("obj")
        with pytest.raises(RemoteError, match="not bound"):
            registry.lookup("obj")
        with pytest.raises(RemoteError):
            registry.unbind("obj")

    def test_method_whitelist(self):
        """The provider states which methods are remotely available;
        everything else on the servant is unreachable."""
        registry = Registry()
        binding = registry.bind("obj", Servant(), ["visible"])
        binding.check_method("visible")
        with pytest.raises(RemoteError, match="does not export"):
            binding.check_method("hidden")

    def test_bind_requires_callable_methods(self):
        registry = Registry()
        with pytest.raises(RemoteError, match="no callable"):
            registry.bind("obj", Servant(), ["nonexistent"])

    def test_names_sorted(self):
        registry = Registry()
        registry.bind("zeta", Servant(), ["visible"])
        registry.bind("alpha", Servant(), ["visible"])
        assert registry.names() == ("alpha", "zeta")
