"""Response-cache TTL must follow the session clock, not wall time.

Deterministic runs are driven by the VirtualClock; if cache entries
age by ``time.monotonic`` instead, a slow *real-time* run can expire
entries mid-run that a fast run keeps, breaking the byte-identical
reproduction guarantee the differential harness asserts.
"""

import time as time_module

import pytest

from repro.bench.scenarios import shared_provider
from repro.ip.component import ProviderConnection
from repro.net.clock import VirtualClock
from repro.net.model import LOCALHOST
from repro.rmi.wire import WIRE_OPTIONS, wire_session


@pytest.fixture
def wall_clock(monkeypatch):
    """A controllable stand-in for the host's monotonic clock."""
    fake = {"now": 0.0}
    monkeypatch.setattr(time_module, "monotonic", lambda: fake["now"])
    return fake


class TestSessionClockDrivesTtl:
    def test_wall_time_cannot_expire_entries(self, wall_clock):
        clock = VirtualClock()
        with wire_session(caching=True, cache_ttl=60.0):
            connection = ProviderConnection(shared_provider(8, True),
                                            LOCALHOST, clock=clock)
            connection.describe("MultFastLowPower")
            trips = connection.round_trips
            # Two weeks of *wall* time pass (a slow real-time run);
            # virtual time has barely moved, so the entry must live on.
            wall_clock["now"] += 14 * 24 * 3600.0
            connection.describe("MultFastLowPower")
            assert connection.round_trips == trips

    def test_virtual_time_does_expire_entries(self, wall_clock):
        clock = VirtualClock()
        with wire_session(caching=True, cache_ttl=60.0):
            connection = ProviderConnection(shared_provider(8, True),
                                            LOCALHOST, clock=clock)
            connection.describe("MultFastLowPower")
            trips = connection.round_trips
            clock.wait(120.0)  # virtual time passes the TTL
            connection.describe("MultFastLowPower")
            assert connection.round_trips == trips + 1

    def test_wire_session_pins_an_explicit_clock(self):
        def frozen() -> float:
            return 42.0

        assert WIRE_OPTIONS.cache_time_fn is None
        with wire_session(cache_time_fn=frozen):
            assert WIRE_OPTIONS.cache_time_fn is frozen
        assert WIRE_OPTIONS.cache_time_fn is None
