"""BatchingTransport: queueing, coalescing, ordering, error semantics."""

import pytest

from repro.core import RemoteError
from repro.net.model import LOCALHOST, WAN
from repro.net.clock import VirtualClock
from repro.rmi import (BatchingTransport, JavaCADServer, RemoteStub,
                       base_transport_of, wrap_transport)
from repro.rmi.transport import Transport


class JournalServant:
    """Records every call in arrival order; supports failures."""

    def __init__(self):
        self.journal = []

    def note(self, value):
        self.journal.append(value)
        return value

    def total(self):
        return sum(self.journal)

    def boom(self):
        raise ValueError("servant exploded")


@pytest.fixture
def servant():
    return JournalServant()


@pytest.fixture
def server(servant):
    server = JavaCADServer("batch.provider")
    server.bind("journal", servant, ["note", "total", "boom"])
    return server


def batched(server, max_batch=8):
    return BatchingTransport(server.connect(LOCALHOST),
                             max_batch=max_batch)


class TestQueueing:
    def test_oneway_calls_queue_without_sending(self, server):
        transport = batched(server)
        for value in (1, 2, 3):
            transport.invoke("journal", "note", (value,), oneway=True)
        assert transport.pending == 3
        assert transport.inner.stats.calls == 0

    def test_blocking_call_coalesces_the_queue(self, server, servant):
        transport = batched(server)
        transport.invoke("journal", "note", (1,), oneway=True)
        transport.invoke("journal", "note", (2,), oneway=True)
        assert transport.invoke("journal", "total") == 3
        # One frame carried all three calls, in issue order.
        assert transport.inner.stats.calls == 1
        assert transport.inner.stats.batches == 1
        assert transport.inner.stats.batched_calls == 3
        assert servant.journal == [1, 2]
        assert transport.pending == 0

    def test_lone_blocking_call_stays_a_plain_frame(self, server):
        transport = batched(server)
        assert transport.invoke("journal", "note", (7,)) == 7
        assert transport.inner.stats.calls == 1
        assert transport.inner.stats.batches == 0

    def test_queue_flushes_at_max_batch(self, server, servant):
        transport = batched(server, max_batch=4)
        for value in range(6):
            transport.invoke("journal", "note", (value,), oneway=True)
        # 4 went out as one frame; 2 still pending.
        assert transport.inner.stats.calls == 1
        assert transport.pending == 2
        assert servant.journal == [0, 1, 2, 3]

    def test_explicit_flush_drains_the_queue(self, server, servant):
        transport = batched(server)
        transport.invoke("journal", "note", (5,), oneway=True)
        transport.invoke("journal", "note", (6,), oneway=True)
        transport.flush()
        assert transport.pending == 0
        assert servant.journal == [5, 6]
        transport.flush()  # idempotent on an empty queue
        assert transport.inner.stats.calls == 1

    def test_flush_of_one_is_not_a_batch(self, server, servant):
        transport = batched(server)
        transport.invoke("journal", "note", (9,), oneway=True)
        transport.flush()
        assert servant.journal == [9]
        assert transport.inner.stats.batches == 0
        assert transport.inner.stats.oneway_calls == 1

    def test_max_batch_must_allow_coalescing(self, server):
        with pytest.raises(ValueError, match="max_batch >= 2"):
            batched(server, max_batch=1)


class TestAccounting:
    def test_saved_round_trips(self, server):
        transport = batched(server)
        for value in range(5):
            transport.invoke("journal", "note", (value,), oneway=True)
        transport.invoke("journal", "total")
        # 6 logical calls, 1 frame: 5 round trips saved.
        assert transport.saved_round_trips == 5
        assert transport.stats.calls == 6
        assert transport.stats.oneway_calls == 5

    def test_oneway_batch_does_not_block_virtual_time(self, server):
        clock = VirtualClock()
        inner = server.connect(WAN, clock=clock)
        transport = BatchingTransport(inner)
        for value in range(4):
            transport.invoke("journal", "note", (value,), oneway=True)
        transport.flush()
        # An all-oneway frame keeps fire-and-forget semantics: wall
        # time catches up only on sync.
        assert clock.wall == pytest.approx(clock.cpu)
        clock.sync()
        assert clock.wall > clock.cpu


class TestErrors:
    def test_blocking_error_raises(self, server):
        transport = batched(server)
        transport.invoke("journal", "note", (1,), oneway=True)
        with pytest.raises(RemoteError, match="servant exploded"):
            transport.invoke("journal", "boom")
        assert transport.stats.errors == 1
        assert transport.pending == 0

    def test_oneway_error_is_counted_not_raised(self, server, servant):
        transport = batched(server)
        transport.invoke("journal", "boom", oneway=True)
        transport.invoke("journal", "note", (4,), oneway=True)
        assert transport.invoke("journal", "total") == 4
        assert transport.stats.errors == 1
        # The failure did not poison the calls behind it.
        assert servant.journal == [4]

    def test_close_flushes_first(self, server, servant):
        transport = batched(server)
        transport.invoke("journal", "note", (8,), oneway=True)
        transport.close()
        assert servant.journal == [8]


class TestStubIntegration:
    def test_stub_rides_the_batching_transport(self, server, servant):
        transport = batched(server)
        stub = RemoteStub(transport, "journal", ["note", "total"])
        stub.invoke_oneway("note", 10)
        stub.invoke_oneway("note", 20)
        assert stub.total() == 30
        assert stub.calls == 3
        assert transport.inner.stats.calls == 1

    def test_wrap_and_unwrap(self, server):
        base = server.connect(LOCALHOST)
        transport = wrap_transport(base, batching=True, caching=True)
        assert base_transport_of(transport) is base
        assert wrap_transport(base) is base


class _BrokenTransport(Transport):
    """A wire that is already dead: every send and even close raise."""

    def invoke(self, object_name, method, args=(), kwargs=None,
               oneway=False):
        raise RemoteError("wire is down")

    def invoke_batch(self, requests):
        raise RemoteError("wire is down")

    def close(self):
        raise RemoteError("already closed")


class TestCloseSemantics:
    def test_close_drains_queued_oneways(self, server, servant):
        transport = batched(server)
        transport.invoke("journal", "note", (1,), oneway=True)
        transport.invoke("journal", "note", (2,), oneway=True)
        transport.close()
        assert servant.journal == [1, 2]
        assert transport.pending == 0
        assert transport.stats.errors == 0

    def test_close_on_broken_wire_drops_and_counts(self):
        transport = BatchingTransport(_BrokenTransport(), max_batch=8)
        transport.invoke("journal", "note", (1,), oneway=True)
        transport.invoke("journal", "note", (2,), oneway=True)
        # Must not raise: the queued oneways are dropped, not lost
        # silently -- each counts as an error.
        transport.close()
        assert transport.pending == 0
        assert transport.stats.errors == 2

    def test_close_survives_inner_close_failure(self):
        transport = BatchingTransport(_BrokenTransport(), max_batch=8)
        transport.close()
        assert transport.stats.errors == 0
