"""In-process transport: call semantics and virtual-time accounting."""

import pytest

from repro.core import RemoteError, Word
from repro.net import CostModel, VirtualClock
from repro.net.model import LAN, LOCALHOST, WAN, NetworkModel
from repro.rmi import (InProcessTransport, JavaCADServer, RemoteStub,
                       SecurityPolicy, current_server_context)


class EchoServant:
    def echo(self, value):
        return value

    def boom(self):
        raise ValueError("servant exploded")

    def charge_heavily(self):
        current_server_context().charge(2.0)
        return "done"


@pytest.fixture
def server():
    server = JavaCADServer("test.provider")
    server.bind("echo", EchoServant(), ["echo", "boom", "charge_heavily"])
    return server


class TestInvoke:
    def test_result_travels(self, server):
        transport = server.connect(LOCALHOST)
        assert transport.invoke("echo", "echo", (Word(5, 8),)) == \
            Word(5, 8)

    def test_servant_exception_becomes_remote_error(self, server):
        transport = server.connect(LOCALHOST)
        with pytest.raises(RemoteError, match="servant exploded"):
            transport.invoke("echo", "boom")
        assert transport.stats.errors == 1

    def test_unknown_object_and_method(self, server):
        transport = server.connect(LOCALHOST)
        with pytest.raises(RemoteError, match="not bound"):
            transport.invoke("ghost", "echo")
        with pytest.raises(RemoteError, match="does not export"):
            transport.invoke("echo", "__class__")

    def test_stats_counting(self, server):
        transport = server.connect(LOCALHOST)
        transport.invoke("echo", "echo", (1,))
        transport.invoke("echo", "echo", (2,), oneway=True)
        assert transport.stats.calls == 2
        assert transport.stats.oneway_calls == 1
        assert transport.stats.bytes_sent > 0

    def test_calls_served_counter(self, server):
        transport = server.connect(LOCALHOST)
        transport.invoke("echo", "echo", (1,))
        assert server.calls_served == 1


class TestTimeAccounting:
    def test_blocking_call_waits_network(self, server):
        clock = VirtualClock()
        transport = server.connect(WAN, clock=clock)
        transport.invoke("echo", "echo", ("x" * 100,))
        # At least two WAN latencies of wall time beyond the CPU part.
        assert clock.wall - clock.cpu >= 2 * WAN.latency

    def test_oneway_call_does_not_wait(self, server):
        clock = VirtualClock()
        transport = server.connect(WAN, clock=clock)
        transport.invoke("echo", "echo", ("x",), oneway=True)
        assert clock.wall == pytest.approx(clock.cpu)
        clock.sync()
        assert clock.wall > clock.cpu

    def test_marshalling_cpu_charged(self, server):
        clock = VirtualClock()
        cost = CostModel()
        transport = server.connect(LOCALHOST, clock=clock,
                                   cost_model=cost)
        transport.invoke("echo", "echo", (1,))
        assert clock.cpu >= cost.marshal_call

    def test_bigger_payload_costs_more_wall(self, server):
        def wall_for(payload):
            clock = VirtualClock()
            transport = server.connect(LAN, clock=clock)
            transport.invoke("echo", "echo", (payload,))
            return clock.wall - clock.cpu

        assert wall_for("x" * 5000) > wall_for("x")

    def test_server_cpu_recorded(self, server):
        clock = VirtualClock()
        transport = server.connect(LAN, clock=clock)
        transport.invoke("echo", "charge_heavily")
        assert clock.server_cpu >= 2.0
        assert clock.wall < 2.0 + clock.cpu + 1.0  # not on client wall

    def test_shared_host_server_cpu_hits_wall(self, server):
        clock = VirtualClock()
        transport = server.connect(LOCALHOST, clock=clock)
        transport.invoke("echo", "charge_heavily")
        assert clock.wall >= 2.0

    def test_oneway_transfers_queue_on_the_link(self, server):
        """Back-to-back non-blocking transfers share one physical link:
        total completion time is the sum, not the max."""
        clock = VirtualClock()
        transport = server.connect(WAN, clock=clock)
        for _ in range(5):
            transport.invoke("echo", "echo", ("y" * 200,), oneway=True)
        clock.sync()
        single = WAN.call_time(
            int(transport.stats.bytes_sent / 5 *
                CostModel().wire_overhead_factor))
        assert clock.wall > 4 * single


class TestSecurityIntegration:
    def test_policy_blocks_foreign_server(self, server):
        from repro.core import SecurityViolationError
        policy = SecurityPolicy("some.other.provider")
        transport = InProcessTransport(server, LOCALHOST, policy=policy)
        with pytest.raises(SecurityViolationError):
            transport.invoke("echo", "echo", (1,))

    def test_policy_allows_own_server(self, server):
        policy = SecurityPolicy("test.provider")
        transport = InProcessTransport(server, LOCALHOST, policy=policy)
        assert transport.invoke("echo", "echo", (1,)) == 1


class TestStub:
    def test_attribute_proxy(self, server):
        stub = RemoteStub(server.connect(LOCALHOST), "echo", ["echo"])
        assert stub.echo(41) == 41
        assert stub.calls == 1

    def test_unknown_method(self, server):
        stub = RemoteStub(server.connect(LOCALHOST), "echo", ["echo"])
        with pytest.raises(AttributeError):
            stub.boom()
        with pytest.raises(RemoteError, match="exports no method"):
            stub.invoke("boom")
        # A locally rejected call never reached the transport: it is
        # neither a completed call nor a transport error.
        assert stub.calls == 0
        assert stub.errors == 0

    def test_calls_counts_successes_only(self, server):
        stub = RemoteStub(server.connect(LOCALHOST), "echo",
                          ["echo", "boom"])
        assert stub.echo(1) == 1
        with pytest.raises(RemoteError, match="servant exploded"):
            stub.boom()
        assert stub.calls == 1
        assert stub.errors == 1

    def test_read_only(self, server):
        stub = RemoteStub(server.connect(LOCALHOST), "echo", ["echo"])
        with pytest.raises(AttributeError, match="read-only"):
            stub.echo = lambda: None

    def test_oneway_helper(self, server):
        stub = RemoteStub(server.connect(LOCALHOST), "echo", ["echo"])
        assert stub.invoke_oneway("echo", 1) is None
