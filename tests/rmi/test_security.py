"""Security policy for downloaded (non-trusted) provider code."""

import pytest

from repro.core import SecurityViolationError
from repro.rmi import SecurityPolicy, default_policy_for


class TestDefaults:
    def test_default_policy_is_locked_down(self):
        policy = default_policy_for("vendor.example")
        assert not policy.trusted
        assert not policy.allow_filesystem
        policy.check_connect("vendor.example")  # its own provider: ok

    def test_file_access_denied(self):
        policy = default_policy_for("vendor.example")
        with pytest.raises(SecurityViolationError, match="file access"):
            policy.check_file_access("/etc/passwd")
        with pytest.raises(SecurityViolationError):
            policy.check_file_access("~/design.v", mode="w")

    def test_foreign_connect_denied(self):
        policy = default_policy_for("vendor.example")
        with pytest.raises(SecurityViolationError, match="connect"):
            policy.check_connect("competitor.example")

    def test_exec_denied(self):
        policy = default_policy_for("vendor.example")
        with pytest.raises(SecurityViolationError, match="execution"):
            policy.check_exec("rm -rf /")


class TestRelaxation:
    def test_user_can_relax_filesystem(self):
        policy = default_policy_for("vendor.example")
        policy.relax(filesystem=True)
        policy.check_file_access("/tmp/scratch")  # now allowed

    def test_user_can_relax_hosts(self):
        policy = default_policy_for("vendor.example")
        policy.relax(hosts=["mirror.example"])
        policy.check_connect("mirror.example")
        with pytest.raises(SecurityViolationError):
            policy.check_connect("still.blocked.example")

    def test_extra_hosts_at_construction(self):
        policy = SecurityPolicy("vendor.example",
                                extra_hosts=["cdn.example"])
        policy.check_connect("cdn.example")

    def test_trusted_policy_allows_everything(self):
        policy = SecurityPolicy("vendor.example", trusted=True)
        policy.check_connect("anywhere.example")
        policy.check_file_access("/etc/passwd")
        policy.check_exec("anything")


class TestViolationLog:
    def test_violations_are_recorded(self):
        policy = default_policy_for("vendor.example")
        for _ in range(3):
            with pytest.raises(SecurityViolationError):
                policy.check_file_access("/secret")
        assert len(policy.violations) == 3
        assert all("denied" in message for message in policy.violations)
