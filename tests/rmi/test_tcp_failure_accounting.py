"""TcpTransport accounting: every outcome counts exactly once.

Failure injection over real socket pairs.  The invariant under test:
each invoke/invoke_batch increments exactly one of {the success
counters (``record``/``record_batch``), ``stats.errors``} -- never
both, never neither.  Before the fix an error reply or a batch that
died mid-reply moved the success counters *and* the error counter,
leaving ``batches``/``batched_calls`` inconsistent with ``calls``.
"""

import socket
import struct
import threading

import pytest

from repro.core import RemoteError
from repro.rmi import JavaCADServer, TcpTransport
from repro.rmi.protocol import (BatchReply, BatchRequest, CallReply,
                                CallRequest)


class _ScriptedServer:
    """Accepts one connection; answers each frame via a reply function.

    The reply function receives the raw request payload and returns
    the raw reply payload to frame back (or ``None`` to close the
    connection without replying).
    """

    def __init__(self, reply_fn):
        self._reply_fn = reply_fn
        self._socket = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._socket.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._socket.bind(("127.0.0.1", 0))
        self._socket.listen(1)
        self.host, self.port = self._socket.getsockname()
        self._thread = threading.Thread(target=self._serve, daemon=True)
        self._thread.start()

    def _serve(self):
        connection, _address = self._socket.accept()
        with connection:
            while True:
                header = b""
                while len(header) < 4:
                    chunk = connection.recv(4 - len(header))
                    if not chunk:
                        return
                    header += chunk
                (length,) = struct.unpack(">I", header)
                payload = b""
                while len(payload) < length:
                    chunk = connection.recv(length - len(payload))
                    if not chunk:
                        return
                    payload += chunk
                reply = self._reply_fn(payload)
                if reply is None:
                    return
                connection.sendall(struct.pack(">I", len(reply)) + reply)

    def close(self):
        self._socket.close()
        self._thread.join(timeout=2.0)


def _assert_exactly_one_error(stats):
    """The exactly-one-of invariant after a single failed call."""
    assert stats.errors == 1
    assert stats.calls == 0
    assert stats.oneway_calls == 0
    assert stats.batches == 0
    assert stats.batched_calls == 0


class _Servant:
    def add(self, a, b):
        return a + b

    def boom(self):
        raise ValueError("servant exploded")


@pytest.fixture
def tcp_server():
    server = JavaCADServer("accounting.test.provider")
    server.bind("math", _Servant(), ["add", "boom"])
    host, port = server.serve_tcp()
    try:
        yield host, port
    finally:
        server.stop_tcp()


class TestInvokeAccounting:
    def test_error_reply_counts_only_as_error(self, tcp_server):
        host, port = tcp_server
        transport = TcpTransport(host, port, timeout=2.0)
        try:
            with pytest.raises(RemoteError, match="servant exploded"):
                transport.invoke("math", "boom")
            _assert_exactly_one_error(transport.stats)
        finally:
            transport.close()

    def test_oneway_error_reply_counts_only_as_error(self, tcp_server):
        host, port = tcp_server
        transport = TcpTransport(host, port, timeout=2.0)
        try:
            assert transport.invoke("math", "boom", oneway=True) is None
            _assert_exactly_one_error(transport.stats)
        finally:
            transport.close()

    def test_undecodable_reply_counts_once_and_drops_socket(self):
        server = _ScriptedServer(lambda payload: b"not json at all")
        try:
            transport = TcpTransport(server.host, server.port,
                                     timeout=2.0)
            with pytest.raises(RemoteError, match="undecodable"):
                transport.invoke("math", "add", (1, 2))
            _assert_exactly_one_error(transport.stats)
            assert transport._socket is None
        finally:
            server.close()

    def test_success_still_counts_once(self, tcp_server):
        host, port = tcp_server
        transport = TcpTransport(host, port, timeout=2.0)
        try:
            assert transport.invoke("math", "add", (1, 2)) == 3
            assert transport.stats.calls == 1
            assert transport.stats.errors == 0
        finally:
            transport.close()


def _short_batch_reply(payload):
    """A syntactically valid BatchReply that answers too few calls."""
    batch = BatchRequest.decode(payload)
    replies = tuple(CallReply(call.call_id, ok=True)
                    for call in batch.calls[:-1])
    return BatchReply(batch.batch_id, replies).encode()


class TestInvokeBatchAccounting:
    def _batch(self):
        return [CallRequest("math", "add", (index, index), {},
                            oneway=True)
                for index in range(3)]

    def test_undecodable_batch_reply_counts_once(self):
        server = _ScriptedServer(lambda payload: b"\xff garbage")
        try:
            transport = TcpTransport(server.host, server.port,
                                     timeout=2.0)
            with pytest.raises(RemoteError, match="undecodable"):
                transport.invoke_batch(self._batch())
            _assert_exactly_one_error(transport.stats)
            assert transport._socket is None
        finally:
            server.close()

    def test_reply_count_mismatch_counts_once(self):
        server = _ScriptedServer(_short_batch_reply)
        try:
            transport = TcpTransport(server.host, server.port,
                                     timeout=2.0)
            with pytest.raises(RemoteError, match="carries"):
                transport.invoke_batch(self._batch())
            _assert_exactly_one_error(transport.stats)
        finally:
            server.close()

    def test_successful_batch_counts_once(self, tcp_server):
        host, port = tcp_server
        transport = TcpTransport(host, port, timeout=2.0)
        try:
            replies = transport.invoke_batch(self._batch())
            assert len(replies) == 3
            assert transport.stats.batches == 1
            assert transport.stats.batched_calls == 3
            assert transport.stats.errors == 0
        finally:
            transport.close()
