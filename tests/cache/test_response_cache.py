"""ResponseCache: LRU bounds, TTL expiry, invalidation, accounting."""

import pytest

from repro.cache import ResponseCache, cache_key


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


class TestBasics:
    def test_get_put_round_trip(self):
        cache = ResponseCache()
        key = cache_key("o", "m", (1,))
        assert cache.get(key) is None
        cache.put(key, b"reply")
        assert cache.get(key) == b"reply"
        assert key in cache
        assert len(cache) == 1

    def test_bytes_only(self):
        cache = ResponseCache()
        with pytest.raises(TypeError, match="marshalled bytes"):
            cache.put("k", "not bytes")

    def test_overwrite_updates_value(self):
        cache = ResponseCache()
        cache.put("o.m:1", b"old")
        cache.put("o.m:1", b"new")
        assert cache.get("o.m:1") == b"new"
        assert len(cache) == 1

    def test_constructor_validation(self):
        with pytest.raises(ValueError, match="at least one entry"):
            ResponseCache(max_entries=0)
        with pytest.raises(ValueError, match="ttl must be positive"):
            ResponseCache(ttl=0)


class TestLru:
    def test_eviction_order_is_least_recently_used(self):
        cache = ResponseCache(max_entries=2)
        cache.put("a.m:1", b"1")
        cache.put("b.m:2", b"2")
        cache.get("a.m:1")          # refresh a -> b is now the LRU
        cache.put("c.m:3", b"3")
        assert cache.get("b.m:2") is None
        assert cache.get("a.m:1") == b"1"
        assert cache.get("c.m:3") == b"3"
        assert cache.stats.evictions == 1

    def test_size_never_exceeds_bound(self):
        cache = ResponseCache(max_entries=4)
        for index in range(20):
            cache.put(f"o.m:{index}", b"x")
            assert len(cache) <= 4
        assert cache.stats.evictions == 16


class TestTtl:
    def test_entries_expire(self):
        clock = FakeClock()
        cache = ResponseCache(ttl=10.0, time_fn=clock)
        cache.put("o.m:1", b"v")
        clock.advance(9.9)
        assert cache.get("o.m:1") == b"v"
        clock.advance(0.2)
        assert cache.get("o.m:1") is None
        assert cache.stats.expirations == 1
        assert len(cache) == 0

    def test_per_entry_ttl_overrides_default(self):
        clock = FakeClock()
        cache = ResponseCache(ttl=100.0, time_fn=clock)
        cache.put("o.m:short", b"s", ttl=1.0)
        cache.put("o.m:long", b"l")
        clock.advance(2.0)
        assert cache.get("o.m:short") is None
        assert cache.get("o.m:long") == b"l"

    def test_no_ttl_means_no_expiry(self):
        clock = FakeClock()
        cache = ResponseCache(time_fn=clock)
        cache.put("o.m:1", b"v")
        clock.advance(1e9)
        assert cache.get("o.m:1") == b"v"


class TestInvalidation:
    def _seeded(self):
        cache = ResponseCache()
        cache.put(cache_key("catalog", "describe", ("A",)), b"a")
        cache.put(cache_key("catalog", "describe", ("B",)), b"b")
        cache.put(cache_key("catalog", "list_components"), b"l")
        cache.put(cache_key("timing", "output_timing"), b"t")
        return cache

    def test_invalidate_object(self):
        cache = self._seeded()
        assert cache.invalidate("catalog") == 3
        assert len(cache) == 1
        assert cache.get(cache_key("timing", "output_timing")) == b"t"

    def test_invalidate_method(self):
        cache = self._seeded()
        assert cache.invalidate("catalog", "describe") == 2
        assert cache.get(cache_key("catalog", "list_components")) == b"l"

    def test_clear(self):
        cache = self._seeded()
        assert cache.clear() == 4
        assert len(cache) == 0
        assert cache.stats.invalidations == 4


class TestStats:
    def test_snapshot_and_saved_round_trips(self):
        cache = ResponseCache()
        cache.put("o.m:1", b"v")
        cache.get("o.m:1")
        cache.get("o.m:1")
        cache.get("o.m:missing")
        snapshot = cache.stats.snapshot()
        assert snapshot["hits"] == 2
        assert snapshot["misses"] == 1
        assert snapshot["puts"] == 1
        assert snapshot["saved_round_trips"] == 2
        assert cache.stats.saved_round_trips == 2
