"""Concurrent remote estimation: sessions keep users and runs apart."""

import pytest

from repro.core import (Circuit, PatternPrimaryInput, PrimaryOutput,
                        SimulationController, WordConnector)
from repro.estimation import AVERAGE_POWER, ByName, SetupController
from repro.ip import IPProvider, MultFastLowPower, ProviderConnection
from repro.net import LOCALHOST

WIDTH = 5


@pytest.fixture(scope="module")
def provider():
    vendor = IPProvider("concurrent.remote.provider")
    vendor.publish_multiplier(WIDTH, training_patterns=80)
    return vendor


def make_run(provider, pattern_values, session=None):
    connection = ProviderConnection(provider, LOCALHOST, session=session)
    a, b = WordConnector(WIDTH), WordConnector(WIDTH)
    o = WordConnector(2 * WIDTH)
    ina = PatternPrimaryInput(WIDTH, pattern_values, a, name="INA")
    inb = PatternPrimaryInput(WIDTH, [(v + 3) % 32
                                      for v in pattern_values], b,
                              name="INB")
    mult = MultFastLowPower(WIDTH, a, b, o, connection, buffer_size=2,
                            name="MULT")
    out = PrimaryOutput(2 * WIDTH, o, name="OUT")
    circuit = Circuit(ina, inb, mult, out)
    setup = SetupController()
    setup.set(AVERAGE_POWER, ByName("gate-level-toggle"))
    setup.apply(circuit)
    controller = SimulationController(circuit, setup=setup)
    return controller, mult


class TestSessionIsolation:
    def test_two_clients_interleaved(self, provider):
        """Two clients with different stimuli share one provider; their
        accumulated results never mix."""
        first_ctrl, first_mult = make_run(provider, [1, 2, 3, 4])
        second_ctrl, second_mult = make_run(provider, [31, 30, 29, 28])
        thread_a = first_ctrl.start_async()
        thread_b = second_ctrl.start_async()
        thread_a.join(timeout=30)
        thread_b.join(timeout=30)
        first_powers = first_mult.collect_power(first_ctrl.context)
        second_powers = second_mult.collect_power(second_ctrl.context)
        assert len(first_powers) == 4 and len(second_powers) == 4
        assert first_powers != second_powers

    def test_same_stimulus_same_results(self, provider):
        """Determinism across sessions: identical stimulus, identical
        provider responses."""
        first_ctrl, first_mult = make_run(provider, [7, 8, 9])
        second_ctrl, second_mult = make_run(provider, [7, 8, 9])
        first_ctrl.start()
        second_ctrl.start()
        assert first_mult.collect_power(first_ctrl.context) == \
            pytest.approx(second_mult.collect_power(second_ctrl.context))

    def test_rerun_on_same_connection_uses_new_scheduler_session(
            self, provider):
        """Two sequential controllers over ONE module instance get
        distinct provider sessions (keyed by scheduler id), so the
        second run's results do not append to the first's."""
        connection = ProviderConnection(provider, LOCALHOST)
        a, b = WordConnector(WIDTH), WordConnector(WIDTH)
        o = WordConnector(2 * WIDTH)
        ina = PatternPrimaryInput(WIDTH, [1, 2], a, name="INA")
        inb = PatternPrimaryInput(WIDTH, [3, 4], b, name="INB")
        mult = MultFastLowPower(WIDTH, a, b, o, connection,
                                buffer_size=1, name="MULT")
        out = PrimaryOutput(2 * WIDTH, o, name="OUT")
        circuit = Circuit(ina, inb, mult, out)
        for _round in range(2):
            setup = SetupController()
            setup.set(AVERAGE_POWER, ByName("gate-level-toggle"))
            setup.apply(circuit)
            controller = SimulationController(circuit, setup=setup)
            controller.start()
            powers = mult.collect_power(controller.context)
            assert len(powers) == 2  # not 4 on the second round
