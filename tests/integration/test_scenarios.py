"""Integration: the Figure 2 scenarios at reduced scale.

The full Table 2 runs in benchmarks/; here the same machinery is
exercised with fewer patterns, checking functional equivalence across
AL/ER/MR and the headline timing orderings.
"""

import pytest

from repro.bench import Figure2Design, run_scenario, shared_provider
from repro.core import SimulationController
from repro.ip import ProviderConnection
from repro.net import LAN, LOCALHOST, WAN, VirtualClock

WIDTH = 6
PATTERNS = 12


@pytest.fixture(scope="module")
def provider():
    return shared_provider(WIDTH)


def products_for(mode, provider):
    clock = VirtualClock()
    connection = None
    if mode != "AL":
        connection = ProviderConnection(provider, LOCALHOST, clock=clock)
    design = Figure2Design(mode, connection, width=WIDTH,
                           patterns=PATTERNS)
    circuit = design.build()
    controller = SimulationController(circuit, clock=clock)
    controller.start()
    values = [v.value for _t, v in design.out.trace(controller.context)
              if v.known]
    controller.teardown()
    return values


class TestFunctionalEquivalence:
    def test_all_three_scenarios_compute_identical_products(self,
                                                            provider):
        al = products_for("AL", provider)
        er = products_for("ER", provider)
        mr = products_for("MR", provider)
        assert al == er == mr
        assert len(al) >= PATTERNS  # every pattern produced a product


class TestTimingShape:
    def test_er_cpu_is_close_to_al(self, provider):
        al = run_scenario("AL", LOCALHOST, width=WIDTH,
                          patterns=PATTERNS)
        er = run_scenario("ER", LOCALHOST, width=WIDTH,
                          patterns=PATTERNS)
        assert er.cpu <= al.cpu * 1.4

    def test_mr_cpu_overhead_is_relevant(self, provider):
        al = run_scenario("AL", LOCALHOST, width=WIDTH,
                          patterns=PATTERNS)
        mr = run_scenario("MR", LOCALHOST, width=WIDTH,
                          patterns=PATTERNS)
        assert mr.cpu >= al.cpu * 1.8

    def test_er_real_time_grows_with_distance(self, provider):
        results = [run_scenario("ER", network, width=WIDTH,
                                patterns=PATTERNS)
                   for network in (LOCALHOST, LAN, WAN)]
        assert results[0].real < results[2].real
        assert results[1].real < results[2].real

    def test_remote_call_counts(self, provider):
        er = run_scenario("ER", LOCALHOST, width=WIDTH,
                          patterns=PATTERNS, buffer_size=4)
        mr = run_scenario("MR", LOCALHOST, width=WIDTH,
                          patterns=PATTERNS, buffer_size=4)
        assert mr.remote_calls > er.remote_calls
        # ER: ~patterns/buffer flush calls (+ catalog + fetch).
        assert er.remote_calls <= PATTERNS // 4 + 4

    def test_power_results_identical_er_vs_mr(self, provider):
        er = run_scenario("ER", LOCALHOST, width=WIDTH,
                          patterns=PATTERNS, collect_powers=True)
        mr = run_scenario("MR", LOCALHOST, width=WIDTH,
                          patterns=PATTERNS, collect_powers=True)
        assert er.powers == pytest.approx(mr.powers)
        assert len(er.powers) == PATTERNS


class TestBufferSweepShape:
    def test_buffering_amortizes(self, provider):
        small = run_scenario("ER", WAN, width=WIDTH, patterns=PATTERNS,
                             buffer_size=1, power_enabled=True)
        large = run_scenario("ER", WAN, width=WIDTH, patterns=PATTERNS,
                             buffer_size=PATTERNS, power_enabled=True)
        assert large.real < small.real
        assert large.cpu < small.cpu
