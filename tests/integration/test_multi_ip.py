"""Several IP blocks from independent providers in one design.

The paper's Figure 1 shows a design under development pulling
components from two IP providers.  Here two protected blocks sit in one
fault-simulated design -- fault effects of the first block propagate
*through the public functional model* of the second -- and the virtual
protocol must still match the flat full-knowledge baseline exactly.
"""

import random

import pytest

from repro.bench import PublicFunctionalModel, functional_model_of
from repro.core import (BitConnector, Circuit, Logic, PrimaryOutput)
from repro.faults import (FaultList, IPBlockClient, SerialFaultSimulator,
                          TestabilityServant, VirtualFaultSimulator,
                          build_fault_list, expand_composed_coverage,
                          reports_agree)
from repro.gates import LogicGateModule, Netlist


def prefixed_half_adder(prefix):
    """A NAND half adder with prefixed internal net names."""
    netlist = Netlist(prefix)
    a = netlist.add_input(f"{prefix}a")
    b = netlist.add_input(f"{prefix}b")
    n = {i: f"{prefix}n{i}" for i in range(1, 5)}
    netlist.add_gate("NAND", [a, b], n[1], name=f"{prefix}g1")
    netlist.add_gate("NAND", [a, n[1]], n[2], name=f"{prefix}g2")
    netlist.add_gate("NAND", [b, n[1]], n[3], name=f"{prefix}g3")
    netlist.add_output(f"{prefix}sum")
    netlist.add_gate("NAND", [n[2], n[3]], f"{prefix}sum",
                     name=f"{prefix}g4")
    netlist.add_output(f"{prefix}carry")
    netlist.add_gate("AND", [a, b], f"{prefix}carry",
                     name=f"{prefix}g5")
    netlist.validate()
    return netlist


def internal_fault_list(netlist):
    full = build_fault_list(netlist, collapse="none")
    names = [name for name in full.names()
             if full.fault(name).net not in netlist.inputs]
    return FaultList(netlist.name,
                     {name: full.fault(name) for name in names})


@pytest.fixture
def two_block_design():
    """x,y,z -> blockA(x,y) -> blockB(sumA, z) -> POs (sumB, carryA|carryB)."""
    block_a = prefixed_half_adder("A_")
    block_b = prefixed_half_adder("B_")
    faults_a = internal_fault_list(block_a)
    faults_b = internal_fault_list(block_b)
    servant_a = TestabilityServant(block_a, faults_a)
    servant_b = TestabilityServant(block_b, faults_b)

    x, y, z = BitConnector("x"), BitConnector("y"), BitConnector("z")
    sum_a, carry_a = BitConnector("sumA"), BitConnector("carryA")
    sum_b, carry_b = BitConnector("sumB"), BitConnector("carryB")
    carries = BitConnector("carries")

    module_a = PublicFunctionalModel(
        ["A_a", "A_b"], ["A_sum", "A_carry"],
        functional_model_of(block_a),
        {"A_a": x, "A_b": y, "A_sum": sum_a, "A_carry": carry_a},
        name="IPA")
    module_b = PublicFunctionalModel(
        ["B_a", "B_b"], ["B_sum", "B_carry"],
        functional_model_of(block_b),
        {"B_a": sum_a, "B_b": z, "B_sum": sum_b, "B_carry": carry_b},
        name="IPB")
    or_gate = LogicGateModule("OR", [carry_a, carry_b], carries,
                              name="gOR")
    po1 = PrimaryOutput(1, sum_b, name="PO1")
    po2 = PrimaryOutput(1, carries, name="PO2")
    circuit = Circuit(module_a, module_b, or_gate, po1, po2,
                      name="two-ip")

    virtual = VirtualFaultSimulator(
        circuit, {"x": x, "y": y, "z": z},
        {"sumB": sum_b, "carries": carries},
        [IPBlockClient(module_a, servant_a, name="IPA"),
         IPBlockClient(module_b, servant_b, name="IPB")])

    # Flat full-knowledge equivalent.
    flat = Netlist("two-ip-flat")
    for net in ("x", "y", "z"):
        flat.add_input(net)
    for gate in block_a.gates:
        inputs = [{"A_a": "x", "A_b": "y"}.get(s, s)
                  for s in gate.inputs]
        flat.add_gate(gate.cell.name, inputs, gate.output,
                      name=gate.name)
    for gate in block_b.gates:
        inputs = [{"B_a": "A_sum", "B_b": "z"}.get(s, s)
                  for s in gate.inputs]
        flat.add_gate(gate.cell.name, inputs, gate.output,
                      name=gate.name)
    flat.add_output("sumB")
    flat.add_gate("BUF", ["B_sum"], "sumB", name="gsb")
    flat.add_output("carries")
    flat.add_gate("OR", ["A_carry", "B_carry"], "carries", name="gOR")
    flat.validate()
    combined = FaultList("flat", {
        **{f"IPA:{n}": faults_a.fault(n) for n in faults_a.names()},
        **{f"IPB:{n}": faults_b.fault(n) for n in faults_b.names()},
    })
    serial = SerialFaultSimulator(flat, combined)
    return virtual, serial, {"IPA": faults_a, "IPB": faults_b}


class TestTwoProviders:
    def test_fault_list_composition(self, two_block_design):
        virtual, _serial, fault_lists = two_block_design
        composed = virtual.build_fault_list()
        assert len(composed) == sum(len(fl)
                                    for fl in fault_lists.values())
        assert any(name.startswith("IPA:") for name in composed)
        assert any(name.startswith("IPB:") for name in composed)

    def test_matches_flat_baseline(self, two_block_design):
        virtual, serial, fault_lists = two_block_design
        rng = random.Random(4)
        patterns = [{"x": rng.getrandbits(1), "y": rng.getrandbits(1),
                     "z": rng.getrandbits(1)} for _ in range(24)]
        virtual_report = virtual.run(patterns)
        serial_report = serial.run(
            [{k: Logic(v) for k, v in p.items()} for p in patterns])
        assert dict(virtual_report.detected) == \
            dict(serial_report.detected)
        # Both blocks contributed detections (effects of A crossed B).
        assert any(name.startswith("IPA:")
                   for name in virtual_report.detected)
        assert any(name.startswith("IPB:")
                   for name in virtual_report.detected)

    def test_upstream_faults_cross_downstream_public_model(
            self, two_block_design):
        """A fault in block A is only observable at sumB through B's
        *functional* model -- no structural knowledge of B needed."""
        virtual, _serial, _fault_lists = two_block_design
        patterns = [{"x": a, "y": b, "z": c}
                    for a in (0, 1) for b in (0, 1) for c in (0, 1)]
        report = virtual.run(patterns)
        a_detected = [name for name in report.detected
                      if name.startswith("IPA:")]
        assert len(a_detected) >= 5

    def test_composed_coverage_expansion(self, two_block_design):
        virtual, _serial, fault_lists = two_block_design
        patterns = [{"x": a, "y": b, "z": c}
                    for a in (0, 1) for b in (0, 1) for c in (0, 1)]
        report = virtual.run(patterns)
        summary = expand_composed_coverage(report, fault_lists)
        assert summary.total_collapsed == sum(
            len(fl) for fl in fault_lists.values())
        assert 0 < summary.collapsed <= 1.0

    def test_per_block_caches_are_independent(self, two_block_design):
        virtual, _serial, _fault_lists = two_block_design
        patterns = [{"x": 1, "y": 1, "z": 0},
                    {"x": 1, "y": 1, "z": 1}]
        virtual.run(patterns)
        client_a, client_b = virtual.ip_blocks
        # A's inputs did not change between the patterns; B's did.
        assert client_a.remote_table_fetches == 1
        assert client_b.remote_table_fetches >= 1
