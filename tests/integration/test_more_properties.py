"""Further property-based tests over the substrates."""

import itertools

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.signal import Logic
from repro.faults import (SerialFaultSimulator, build_fault_list,
                          generate_test)
from repro.gates import ScoapAnalysis, random_netlist
from repro.rmi import marshal, unmarshal


class TestScoapProperties:
    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_invariants_on_random_netlists(self, seed):
        netlist = random_netlist(4, 18, 3, seed=seed)
        analysis = ScoapAnalysis(netlist)
        for net in netlist.inputs:
            numbers = analysis.numbers(net)
            assert numbers.cc0 == 1 and numbers.cc1 == 1
        for net in netlist.outputs:
            assert analysis.numbers(net).co == 0
        for net in netlist.nets():
            numbers = analysis.numbers(net)
            # Controllability is at least depth+1 >= 1 and finite for a
            # fully driven netlist.
            assert numbers.cc0 >= 1 and numbers.cc1 >= 1
            assert numbers.co >= 0

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_gate_output_harder_than_cheapest_input(self, seed):
        """A gate's output controllability strictly exceeds the cost of
        its cheapest supporting input assignment (monotone depth)."""
        netlist = random_netlist(4, 14, 2, seed=seed)
        analysis = ScoapAnalysis(netlist)
        for gate in netlist.gates:
            out = analysis.numbers(gate.output)
            cheapest_in = min(
                min(analysis.numbers(s).cc0, analysis.numbers(s).cc1)
                for s in gate.inputs)
            assert min(out.cc0, out.cc1) > cheapest_in - 1


class TestAtpgProperties:
    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 5_000))
    def test_podem_claims_verified_exhaustively(self, seed):
        """On tiny netlists every PODEM verdict is checked against
        exhaustive simulation: found patterns detect; 'untestable'
        really has no detecting pattern."""
        netlist = random_netlist(3, 8, 2, seed=seed)
        fault_list = build_fault_list(netlist, collapse="equivalence")
        simulator = SerialFaultSimulator(netlist, fault_list)
        n_inputs = len(netlist.inputs)
        all_patterns = [
            {net: Logic((word >> i) & 1)
             for i, net in enumerate(netlist.inputs)}
            for word in range(2 ** n_inputs)]
        for name in fault_list.names():
            result = generate_test(netlist, fault_list.fault(name))
            if result.found:
                assert simulator.detects(result.pattern, name), name
            elif result.status == "untestable":
                assert not any(simulator.detects(p, name)
                               for p in all_patterns), name


class TestMarshalProperties:
    @settings(max_examples=40)
    @given(st.recursive(
        st.none() | st.booleans() | st.integers(-2**40, 2**40)
        | st.text(max_size=12) | st.sampled_from(list(Logic)),
        lambda children: st.lists(children, max_size=3)
        | st.dictionaries(st.text(max_size=4), children, max_size=3),
        max_leaves=12))
    def test_wire_image_is_stable(self, obj):
        """marshal(unmarshal(marshal(x))) == marshal(x): the codec is a
        projection onto the wire domain."""
        first = marshal(obj)
        assert marshal(unmarshal(first)) == first

    @settings(max_examples=30)
    @given(st.binary(max_size=64))
    def test_arbitrary_bytes_never_crash(self, blob):
        """Corrupt wire data raises cleanly (MarshalError) or decodes;
        it never throws anything else or executes code."""
        from repro.core.errors import MarshalError
        try:
            unmarshal(blob)
        except MarshalError:
            pass
