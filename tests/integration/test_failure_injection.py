"""Failure injection: misbehaving providers, dying transports, leaks.

A production client-server design environment must fail loudly and
safely: provider faults travel as errors (not crashes or silent wrong
answers), attempted IP leaks are blocked even when the *provider*
initiates them, and dead connections surface as remote errors.
"""

import pytest

from repro.bench import build_figure4
from repro.core import Logic, MarshalError, RemoteError
from repro.faults import TestabilityServant
from repro.gates import array_multiplier, ip1_block
from repro.net import LOCALHOST
from repro.rmi import JavaCADServer, RemoteStub, TcpTransport


class FlakyServant:
    """Fails on demand, then recovers."""

    def __init__(self, inner):
        self.inner = inner
        self.fail_next = 0

    def fault_list(self):
        return self.inner.fault_list()

    def detection_table(self, bits, undetected):
        if self.fail_next > 0:
            self.fail_next -= 1
            raise RuntimeError("provider database offline")
        return self.inner.detection_table(bits, undetected)


class LeakyServant:
    """A provider that (wrongly) tries to ship its netlist."""

    def __init__(self, netlist):
        self.netlist = netlist

    def gimme(self):
        return self.netlist

    def gimme_nested(self):
        return {"totally-innocent": [1, 2, self.netlist]}


class TestProviderFaults:
    def test_servant_exception_travels_through_protocol(self):
        inner = TestabilityServant(ip1_block())
        flaky = FlakyServant(inner)
        server = JavaCADServer("flaky.provider")
        server.bind("ip1.test", flaky, ("fault_list", "detection_table"))
        stub = RemoteStub(server.connect(LOCALHOST), "ip1.test",
                          ("fault_list", "detection_table"))
        setup = build_figure4(stub=stub)
        flaky.fail_next = 1
        with pytest.raises(RemoteError, match="database offline"):
            setup.simulator.run([{"A": 1, "B": 1, "C": 0, "D": 1}])

    def test_client_recovers_after_provider_recovers(self):
        inner = TestabilityServant(ip1_block())
        flaky = FlakyServant(inner)
        server = JavaCADServer("flaky.provider2")
        server.bind("ip1.test", flaky, ("fault_list", "detection_table"))
        stub = RemoteStub(server.connect(LOCALHOST), "ip1.test",
                          ("fault_list", "detection_table"))
        setup = build_figure4(stub=stub)
        flaky.fail_next = 1
        with pytest.raises(RemoteError):
            setup.simulator.run([{"A": 1, "B": 1, "C": 0, "D": 1}])
        # Same simulator, provider back up: the run completes.
        report = setup.simulator.run([{"A": 1, "B": 1, "C": 0, "D": 1}])
        assert report.detected_count > 0


class TestLeakPrevention:
    def test_provider_initiated_leak_is_blocked(self):
        """Even a *willing* provider cannot push a netlist through the
        channel: the reply fails to marshal."""
        server = JavaCADServer("leaky.provider")
        server.bind("leak", LeakyServant(array_multiplier(2)),
                    ("gimme", "gimme_nested"))
        transport = server.connect(LOCALHOST)
        with pytest.raises(MarshalError, match="IP protection"):
            transport.invoke("leak", "gimme")
        with pytest.raises(MarshalError, match="IP protection"):
            transport.invoke("leak", "gimme_nested")

    def test_leak_blocked_over_tcp_too(self):
        server = JavaCADServer("leaky.tcp.provider")
        server.bind("leak", LeakyServant(array_multiplier(2)),
                    ("gimme",))
        host, port = server.serve_tcp()
        transport = TcpTransport(host, port)
        try:
            # The TCP server thread hits the marshal error while
            # encoding the reply; the connection dies, and the client
            # sees a remote/marshal failure, never the netlist.
            with pytest.raises((RemoteError, MarshalError)):
                transport.invoke("leak", "gimme")
        finally:
            transport.close()
            server.stop_tcp()


class TestDeadTransport:
    def test_stopped_server_surfaces_as_remote_error(self):
        server = JavaCADServer("dying.provider")
        server.bind("ip1.test", TestabilityServant(ip1_block()),
                    ("fault_list",))
        host, port = server.serve_tcp()
        transport = TcpTransport(host, port)
        try:
            assert transport.invoke("ip1.test", "fault_list")
            server.stop_tcp()
            with pytest.raises((RemoteError, OSError)):
                transport.invoke("ip1.test", "fault_list")
        finally:
            transport.close()

    def test_connect_to_nothing_fails_cleanly(self):
        transport = TcpTransport("127.0.0.1", 1)  # nothing listens here
        # Socket-level failures surface as RemoteError (one exception
        # type for all remote-call failures) and are accounted.
        with pytest.raises(RemoteError, match="transport failure"):
            transport.invoke("x", "y")
        assert transport.stats.errors == 1


class TestMalformedProviderData:
    def test_wrong_width_detection_table_rejected(self):
        """A table whose output patterns do not match the block's ports
        is caught at injection time, not silently mis-applied."""
        from repro.core import FaultSimulationError
        from repro.faults import DetectionTable

        class WrongWidthServant:
            def fault_list(self):
                return ("f0",)

            def detection_table(self, bits, undetected):
                return DetectionTable(
                    "evil", tuple(bits), (Logic.ONE,),
                    {(Logic.ZERO, Logic.ZERO, Logic.ZERO): {"f0"}})

        setup = build_figure4(stub=WrongWidthServant())
        with pytest.raises(FaultSimulationError, match="width"):
            setup.simulator.run([{"A": 1, "B": 1, "C": 0, "D": 1}])
