"""Hierarchical designs: composites through the whole flow."""

import pytest

from repro.core import (Circuit, CompositeModule, PatternPrimaryInput,
                        PrimaryOutput, Register, SimulationController,
                        WordConnector)
from repro.estimation import (AREA, AVERAGE_POWER, ByName,
                              ConstantEstimator, MaxAccuracy,
                              SetupController, design_report)
from repro.rtl import WordMultiplier


def registered_operand(width, patterns, seed_values, label):
    """A composite: pattern source + proprietary register macro."""
    raw = WordConnector(width, name=f"{label}_raw")
    registered = WordConnector(width, name=f"{label}_reg")
    source = PatternPrimaryInput(width, seed_values, raw,
                                 name=f"IN{label}")
    register = Register(width, raw, registered, name=f"REG{label}")
    register.add_estimator(ConstantEstimator(AREA.name, 8.0,
                                             name="reg-area"))
    composite = CompositeModule(source, register, name=f"OP{label}")
    composite.add_alias("q", register.port("q"))
    return composite, registered


class TestHierarchicalFigure2:
    def build(self):
        width = 8
        op_a, ar = registered_operand(width, 3, [2, 3, 4], "A")
        op_b, br = registered_operand(width, 3, [5, 6, 7], "B")
        product = WordConnector(2 * width, name="O")
        mult = WordMultiplier(width, ar, br, product, name="MULT")
        mult.add_estimator(ConstantEstimator(AREA.name, 120.0,
                                             name="mult-area"))
        out = PrimaryOutput(2 * width, product, name="OUT")
        circuit = Circuit(op_a, op_b, mult, out, name="hier")
        return circuit, mult, out

    def test_flattened_simulation(self):
        circuit, _mult, out = self.build()
        # Composites expand to leaves: 2x(source+register)+mult+out.
        assert len(circuit) == 6
        controller = SimulationController(circuit)
        controller.start()
        products = [v.value for _t, v in out.trace(controller.context)
                    if v.known]
        assert products[-1] == 4 * 7
        assert 2 * 5 in products

    def test_setup_applies_through_hierarchy(self):
        circuit, mult, _out = self.build()
        setup = SetupController(name="hier-setup")
        setup.set(AREA, MaxAccuracy())
        setup.apply(circuit)  # hierarchical apply over the flattening
        controller = SimulationController(circuit, setup=setup)
        controller.start()
        report = design_report(circuit, setup)
        # Both registers (8 each) and the multiplier (120) reported.
        assert report.total(AREA.name) == pytest.approx(8 + 8 + 120)

    def test_setup_applies_to_one_composite_only(self):
        circuit, mult, _out = self.build()
        composite = None
        # Rebuild to get a handle on the composite object itself.
        op_a, ar = registered_operand(8, 2, [1, 2], "X")
        setup = SetupController(name="partial")
        setup.set(AREA, MaxAccuracy())
        setup.apply(op_a)
        register = next(m for m in op_a.submodules()
                        if m.name == "REGX")
        assert setup.chosen_estimator(register, AREA.name) is not None
        assert setup.chosen_estimator(mult, AREA.name) is None
