"""End-to-end virtual fault simulation across a real TCP boundary.

The provider's TestabilityServant runs behind a genuine socket server;
the client drives the whole two-phase protocol through TcpTransport and
RemoteStub.  This proves that the protocol's data really crosses a
process-style boundary through the restricted wire format.
"""

import random

import pytest

from repro.bench import build_embedded, build_figure4
from repro.core import Logic
from repro.faults import TestabilityServant, reports_agree
from repro.gates import ip1_block, parity_tree
from repro.rmi import JavaCADServer, RemoteStub, TcpTransport


@pytest.fixture
def tcp_testability():
    server = JavaCADServer("tcp.fault.provider")
    servant = TestabilityServant(ip1_block())
    server.bind("IP1.test", servant, TestabilityServant.REMOTE_METHODS)
    host, port = server.serve_tcp()
    transport = TcpTransport(host, port)
    stub = RemoteStub(transport, "IP1.test",
                      TestabilityServant.REMOTE_METHODS)
    yield stub, servant
    transport.close()
    server.stop_tcp()


class TestOverTcp:
    def test_fault_list_over_socket(self, tcp_testability):
        stub, servant = tcp_testability
        names = stub.fault_list()
        assert tuple(names) == servant.fault_list()

    def test_detection_table_over_socket(self, tcp_testability):
        stub, servant = tcp_testability
        table = stub.detection_table([Logic.ONE, Logic.ZERO],
                                     list(servant.fault_list()))
        local = servant.detection_table([Logic.ONE, Logic.ZERO],
                                        servant.fault_list())
        assert table == local
        # The wire pattern keys come back as Logic, not bare ints.
        assert all(isinstance(bit, Logic)
                   for pattern in table.rows for bit in pattern)

    def test_full_virtual_run_through_the_stub(self, tcp_testability):
        stub, _servant = tcp_testability
        setup = build_figure4(collapse="equivalence", stub=stub)
        rng = random.Random(12)
        patterns = [{name: rng.getrandbits(1) for name in "ABCD"}
                    for _ in range(12)]
        report = setup.simulator.run(patterns)
        # Compare against the same run with a direct (in-process)
        # servant: the transport must be behaviour-transparent.
        direct = build_figure4(collapse="equivalence")
        direct_report = direct.simulator.run(patterns)
        assert dict(report.detected) == dict(direct_report.detected)

    def test_embedded_block_agrees_with_serial_over_tcp(self):
        experiment = build_embedded(parity_tree(4), block_name="PAR")
        # Swap the direct servant for a TCP stub.
        servant = experiment.virtual.ip_blocks[0].stub
        server = JavaCADServer("tcp.embed.provider")
        server.bind("PAR.test", servant,
                    TestabilityServant.REMOTE_METHODS)
        host, port = server.serve_tcp()
        transport = TcpTransport(host, port)
        try:
            experiment.virtual.ip_blocks[0].stub = RemoteStub(
                transport, "PAR.test", TestabilityServant.REMOTE_METHODS)
            patterns = experiment.random_patterns(10, seed=3)
            virtual = experiment.virtual.run(patterns)
            serial = experiment.serial.run(
                experiment.patterns_as_logic(patterns))
            assert reports_agree(virtual, serial,
                                 rename=lambda q: q.split(":", 1)[1])
        finally:
            transport.close()
            server.stop_tcp()
