"""Every example script runs to completion (the quickstart contract)."""

import pathlib
import runpy

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parents[2] / "examples"


def run_example(name, capsys):
    runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    return capsys.readouterr().out


@pytest.mark.slow
class TestExamples:
    def test_quickstart(self, capsys):
        out = run_example("quickstart.py", capsys)
        assert "provider catalog: ['MultFastLowPower']" in out
        assert "simulated 100 patterns" in out
        assert "estimation fees" in out

    def test_virtual_fault_simulation(self, capsys):
        out = run_example("virtual_fault_simulation.py", capsys)
        assert "pattern 1100 detects I3sa0: False" in out
        assert "pattern 1101 detects I3sa0: True" in out
        assert "virtual == flat serial baseline: True" in out

    def test_ip_marketplace(self, capsys):
        out = run_example("ip_marketplace.py", capsys)
        assert "budget cap enforced" in out
        assert "marshaller refused a netlist" in out
        assert "verifies with the right key : True" in out
        assert "verifies with a wrong key   : False" in out

    def test_concurrent_simulations(self, capsys):
        out = run_example("concurrent_simulations.py", capsys)
        assert "mixed-level run" in out
        assert "schedulers never interfered" in out

    def test_dsp_stream_ip(self, capsys):
        out = run_example("dsp_stream_ip.py", capsys)
        assert "matches a local reference filter exactly" in out
        assert "coefficients stay secret" in out

    def test_testability_economy(self, capsys):
        out = run_example("testability_economy.py", capsys)
        assert "SCOAP boundary summary" in out
        assert "vault preview" in out
        assert "matches full-knowledge sequential baseline: True" in out
