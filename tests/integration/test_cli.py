"""The repro-bench command-line interface."""

import pytest

from repro.cli import build_parser, main
from repro.gates.io import C17_BENCH


class TestParser:
    def test_all_subcommands_registered(self):
        parser = build_parser()
        args = parser.parse_args(["table1"])
        assert args.command == "table1"
        for command in ("table2", "figure3", "figure4"):
            assert parser.parse_args([command]).command == command

    def test_faultsim_arguments(self):
        args = build_parser().parse_args(
            ["faultsim", "x.bench", "--patterns", "10", "--collapse",
             "dominance", "--history"])
        assert args.netlist == "x.bench"
        assert args.patterns == 10
        assert args.collapse == "dominance"
        assert args.history

    def test_missing_command_errors(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestExecution:
    def test_figure4(self, capsys):
        assert main(["figure4"]) == 0
        out = capsys.readouterr().out
        assert "I6sa1" in out
        assert "1100 detects I3sa0: False" in out
        assert "1101 detects I3sa0: True" in out

    def test_table1_small(self, capsys):
        assert main(["table1", "--width", "4", "--patterns", "40"]) == 0
        out = capsys.readouterr().out
        assert "gate-level-toggle" in out
        assert "constant-power" in out

    def test_faultsim_on_c17(self, tmp_path, capsys):
        bench = tmp_path / "c17.bench"
        bench.write_text(C17_BENCH)
        assert main(["faultsim", str(bench), "--patterns", "32",
                     "--history"]) == 0
        out = capsys.readouterr().out
        assert "6 gates" in out
        assert "coverage" in out

    def test_faultsim_no_collapse(self, tmp_path, capsys):
        bench = tmp_path / "c17.bench"
        bench.write_text(C17_BENCH)
        assert main(["faultsim", str(bench), "--collapse", "none",
                     "--patterns", "16"]) == 0
        assert "faults" in capsys.readouterr().out

    def test_all_quick(self, capsys):
        assert main(["all", "--quick"]) == 0
        out = capsys.readouterr().out
        for marker in ("Table 1", "Table 2", "Figure 3",
                       "Figures 4-5", "gate-level-toggle"):
            assert marker in out

    def test_scoap_on_c17(self, tmp_path, capsys):
        bench = tmp_path / "c17.bench"
        bench.write_text(C17_BENCH)
        assert main(["scoap", str(bench), "--top", "5"]) == 0
        out = capsys.readouterr().out
        assert "critical path:" in out
        assert "CC0" in out and "CO" in out
        assert "6 gates" in out

    def test_atpg_on_c17(self, tmp_path, capsys):
        bench = tmp_path / "c17.bench"
        bench.write_text(C17_BENCH)
        assert main(["atpg", str(bench), "--random-patterns", "4",
                     "--show-patterns"]) == 0
        out = capsys.readouterr().out
        assert "coverage 100.0%" in out
        assert "SCOAP hardest site" in out
        assert "patterns (" in out


class TestOutputPathValidation:
    """Bad output destinations must be rejected before any work runs."""

    def _missing(self, tmp_path):
        return str(tmp_path / "no" / "such" / "dir" / "out.json")

    def test_report_out_missing_dir_fails_fast(self, tmp_path, capsys):
        with pytest.raises(SystemExit):
            main(["faultsim", "figure4", "--patterns", "4",
                  "--report-out", self._missing(tmp_path)])
        err = capsys.readouterr().err
        assert "--report-out" in err
        # Nothing ran: the run's banner never printed.
        assert "faults" not in capsys.readouterr().out

    def test_trace_out_missing_dir_fails_fast(self, tmp_path, capsys):
        with pytest.raises(SystemExit):
            main(["figure4", "--trace-out", self._missing(tmp_path)])
        assert "--trace-out" in capsys.readouterr().err

    def test_metrics_out_missing_dir_fails_fast(self, tmp_path, capsys):
        with pytest.raises(SystemExit):
            main(["figure4", "--metrics-out", self._missing(tmp_path)])
        assert "--metrics-out" in capsys.readouterr().err

    def test_valid_report_path_still_writes(self, tmp_path, capsys):
        out = tmp_path / "report.json"
        assert main(["faultsim", "figure4", "--patterns", "4",
                     "--report-out", str(out)]) == 0
        assert out.exists()


class TestCorpusBenches:
    """Every campaign command accepts builtin corpus names, including
    the sequential s-series."""

    @pytest.mark.parametrize("bench", ["alu8", "ecc32", "alu32",
                                       "mult8"])
    def test_faultsim_compiled_on_corpus(self, bench, capsys):
        assert main(["faultsim", bench, "--engine", "compiled",
                     "--patterns", "16"]) == 0
        assert "coverage" in capsys.readouterr().out

    def test_faultsim_sequential_serial(self, capsys):
        assert main(["faultsim", "s27", "--patterns", "20"]) == 0
        out = capsys.readouterr().out
        assert "3 flip-flops" in out
        assert "clock cycles" in out
        assert "coverage" in out

    def test_faultsim_sequential_rejects_compiled_engine(self, capsys):
        assert main(["faultsim", "s27", "--engine", "compiled",
                     "--patterns", "4"]) == 2
        err = capsys.readouterr().err
        assert "sequential bench" in err
        assert "read_sequential_bench" in err
        assert "repro.faults.sequential" in err

    @pytest.mark.parametrize("flag", [["--workers", "4"],
                                      ["--remote", "h:9001"]])
    def test_faultsim_sequential_rejects_parallel_flags(self, flag,
                                                        capsys):
        assert main(["faultsim", "s27", "--patterns", "4"] + flag) == 2
        assert "repro.faults.sequential" in capsys.readouterr().err

    @pytest.mark.parametrize("bench", ["alu8", "ecc32", "alu32",
                                       "mult8", "s27", "salu8"])
    def test_lint_accepts_corpus(self, bench, capsys):
        assert main(["lint", "--design", bench]) == 0
        assert "no findings" in capsys.readouterr().out

    def test_atpg_on_corpus(self, capsys):
        # A tight backtrack budget keeps the deterministic phase quick;
        # random-resistant alu8 faults are reported as aborted instead.
        assert main(["atpg", "alu8", "--random-patterns", "64",
                     "--engine", "compiled",
                     "--max-backtracks", "50"]) == 0
        assert "coverage" in capsys.readouterr().out

    def test_atpg_sequential_goes_full_scan(self, capsys):
        assert main(["atpg", "s27", "--random-patterns", "16"]) == 0
        out = capsys.readouterr().out
        assert "full-scan" in out
        assert "coverage" in out

    def test_table2_over_corpus_bench(self, capsys):
        assert main(["table2", "--bench", "s27", "--patterns",
                     "10"]) == 0
        out = capsys.readouterr().out
        assert "Table 2 over bench 's27'" in out
        for scenario in ("AL", "ER", "MR"):
            assert scenario in out

    def test_table2_unknown_bench_fails(self, capsys):
        assert main(["table2", "--bench", "c9999", "--patterns",
                     "4"]) == 2
        assert "neither a file" in capsys.readouterr().err

    def test_unknown_bench_lists_corpus(self, capsys):
        assert main(["faultsim", "c9999", "--patterns", "4"]) == 2
        err = capsys.readouterr().err
        assert "neither a file" in err
        assert "mult16" in err


class TestRemoteFarmCli:
    def test_remote_flag_is_repeatable(self):
        args = build_parser().parse_args(
            ["faultsim", "figure4", "--remote", "h1:9001",
             "--remote", "h2:9002"])
        assert args.remote == ["h1:9001", "h2:9002"]

    def test_faultworker_arguments(self):
        args = build_parser().parse_args(
            ["faultworker", "--port", "9001", "--serve-seconds", "0.5"])
        assert args.port == 9001
        assert args.serve_seconds == 0.5

    def test_faultsim_remote_end_to_end(self, capsys):
        from repro.parallel.remote import register_fault_farm
        from repro.rmi.server import JavaCADServer

        servers = []
        endpoints = []
        try:
            for index in range(2):
                server = JavaCADServer(f"cli-farm{index}")
                register_fault_farm(server, isolate=False)
                host, port = server.serve_tcp("127.0.0.1", 0)
                servers.append(server)
                endpoints.append(f"{host}:{port}")
            argv = ["faultsim", "figure4", "--patterns", "16"]
            for endpoint in endpoints:
                argv += ["--remote", endpoint]
            assert main(argv) == 0
        finally:
            for server in servers:
                server.stop_tcp()
        out = capsys.readouterr().out
        assert "farmed across 2 remote endpoint(s)" in out
