"""Property tests over the extended fault-simulation protocols."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench import build_sequential_wrapper, functional_model_of
from repro.core import Logic
from repro.faults import (SequentialSerialFaultSimulator,
                          SequentialVirtualFaultSimulator,
                          TestabilityServant, build_fault_list)
from repro.gates import random_netlist


def sequence_for(design, length, seed):
    rng = random.Random(seed)
    return [{net: Logic(rng.getrandbits(1))
             for net in design.primary_inputs} for _ in range(length)]


class TestSequentialProperty:
    @settings(max_examples=8, deadline=None)
    @given(seed=st.integers(0, 5_000),
           sequence_seed=st.integers(0, 5_000))
    def test_virtual_equals_serial_on_random_blocks(self, seed,
                                                    sequence_seed):
        """For any random IP block wrapped in registers and any random
        clock sequence, the sequential virtual protocol detects exactly
        what the full-knowledge baseline does, cycle by cycle."""
        ip_netlist = random_netlist(3, 9, 2, seed=seed)
        design = build_sequential_wrapper(ip_netlist)
        fault_list = build_fault_list(ip_netlist)
        servant = TestabilityServant(ip_netlist, fault_list)
        virtual = SequentialVirtualFaultSimulator(
            design, servant, functional_model_of(ip_netlist))
        serial = SequentialSerialFaultSimulator(design, ip_netlist,
                                                fault_list)
        sequence = sequence_for(design, 8, sequence_seed)
        assert dict(virtual.run(sequence).detected) == \
            dict(serial.run(sequence).detected)

    @settings(max_examples=6, deadline=None)
    @given(seed=st.integers(0, 5_000))
    def test_detection_cycle_indices_are_valid(self, seed):
        ip_netlist = random_netlist(3, 8, 2, seed=seed)
        design = build_sequential_wrapper(ip_netlist)
        fault_list = build_fault_list(ip_netlist)
        serial = SequentialSerialFaultSimulator(design, ip_netlist,
                                                fault_list)
        length = 10
        report = serial.run(sequence_for(design, length, seed + 1))
        for index in report.detected.values():
            assert 0 <= index < length
        # per_pattern history is consistent with the detected map.
        seen = set()
        for cycle, newly in enumerate(report.per_pattern):
            for name in newly:
                assert report.detected[name] == cycle
                assert name not in seen  # dropping: detected once
                seen.add(name)
        assert seen == set(report.detected)

    @settings(max_examples=6, deadline=None)
    @given(seed=st.integers(0, 5_000))
    def test_reused_sequential_simulator_is_consistent(self, seed):
        """The cache-clearing rule holds for the sequential client too:
        a reused simulator equals a fresh one."""
        ip_netlist = random_netlist(3, 8, 2, seed=seed)
        design = build_sequential_wrapper(ip_netlist)
        fault_list = build_fault_list(ip_netlist)
        servant = TestabilityServant(ip_netlist, fault_list)
        reused = SequentialVirtualFaultSimulator(
            design, servant, functional_model_of(ip_netlist))
        sequence = sequence_for(design, 6, seed + 7)
        reused.run(sequence)
        second = reused.run(sequence)
        fresh = SequentialVirtualFaultSimulator(
            design, TestabilityServant(ip_netlist, fault_list),
            functional_model_of(ip_netlist))
        assert dict(second.detected) == \
            dict(fresh.run(sequence).detected)
