"""Property-based integration tests over randomly generated designs."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench import build_embedded
from repro.core import Logic
from repro.faults import reports_agree
from repro.gates import NetlistSimulator, random_netlist
from repro.ip import embed_watermark, verify_watermark


class TestVirtualEqualsSerialProperty:
    @settings(max_examples=12, deadline=None)
    @given(seed=st.integers(0, 10_000),
           pattern_seed=st.integers(0, 10_000))
    def test_random_blocks_agree(self, seed, pattern_seed):
        """For any embedded random IP block and any random test set, the
        virtual protocol detects exactly what the flat baseline does."""
        block = random_netlist(4, 14, 2, seed=seed)
        experiment = build_embedded(block, block_name="IP")
        patterns = experiment.random_patterns(10, seed=pattern_seed)
        virtual = experiment.virtual.run(patterns)
        serial = experiment.serial.run(
            experiment.patterns_as_logic(patterns))
        assert reports_agree(virtual, serial,
                             rename=lambda q: q.split(":", 1)[1])


class TestWatermarkProperty:
    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 1000),
           key=st.text(min_size=1, max_size=12),
           stimulus=st.lists(st.integers(0, 2**5 - 1), min_size=1,
                             max_size=5))
    def test_watermark_never_changes_function(self, seed, key, stimulus):
        netlist = random_netlist(5, 24, 3, seed=seed)
        marked = embed_watermark(netlist, key=key, bits=4)
        original_sim = NetlistSimulator(netlist)
        marked_sim = NetlistSimulator(marked)
        for word in stimulus:
            inputs = {net: Logic((word >> i) & 1)
                      for i, net in enumerate(netlist.inputs)}
            assert original_sim.outputs(inputs) == \
                marked_sim.outputs(inputs)
        assert verify_watermark(marked, key, bits=4)


class TestCoverageMonotonicityProperty:
    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_more_patterns_never_reduce_coverage(self, seed):
        block = random_netlist(4, 12, 2, seed=seed)
        experiment = build_embedded(block, block_name="IP")
        rng = random.Random(seed)
        patterns = [{name: rng.getrandbits(1)
                     for name in experiment.input_names}
                    for _ in range(8)]
        short = build_embedded(random_netlist(4, 12, 2, seed=seed),
                               block_name="IP")
        short_report = short.virtual.run(patterns[:4])
        long_report = experiment.virtual.run(patterns)
        assert set(short_report.detected) <= set(long_report.detected)
