"""Unit tests for the netlist-to-Python compiler and its cache."""

import pytest

from repro.compiled import (clear_kernel_cache, compile_netlist,
                            netlist_fingerprint)
from repro.compiled.compiler import CompiledKernel, _gate_lines
from repro.core.errors import FaultSimulationError
from repro.core.signal import Logic
from repro.faults.model import StuckAtFault
from repro.parallel.remote import resolve_bench
from repro.gates.netlist import Netlist
from repro.telemetry import TELEMETRY, telemetry_session


@pytest.fixture(autouse=True)
def _fresh_cache():
    clear_kernel_cache()
    TELEMETRY.disable()
    TELEMETRY.reset()
    yield
    clear_kernel_cache()
    TELEMETRY.disable()
    TELEMETRY.reset()


def small_netlist(name="small"):
    netlist = Netlist(name)
    netlist.add_input("a")
    netlist.add_input("b")
    netlist.add_output("o")
    netlist.add_gate("AND", ["a", "b"], "n0", name="g0")
    netlist.add_gate("NOT", ["n0"], "o", name="g1")
    return netlist


class TestFingerprint:
    def test_name_independent(self):
        assert netlist_fingerprint(small_netlist("x")) \
            == netlist_fingerprint(small_netlist("y"))

    def test_structure_sensitive(self):
        other = Netlist("small")
        other.add_input("a")
        other.add_input("b")
        other.add_output("o")
        other.add_gate("OR", ["a", "b"], "n0", name="g0")
        other.add_gate("NOT", ["n0"], "o", name="g1")
        assert netlist_fingerprint(small_netlist()) \
            != netlist_fingerprint(other)


class TestKernelCache:
    def test_equal_content_shares_one_kernel(self):
        first = compile_netlist(small_netlist("one"))
        second = compile_netlist(small_netlist("two"))
        assert second is first

    def test_clear_forces_recompile(self):
        first = compile_netlist(small_netlist())
        clear_kernel_cache()
        assert compile_netlist(small_netlist()) is not first

    def test_hit_and_miss_counters(self):
        with telemetry_session():
            compile_netlist(small_netlist())
            compile_netlist(small_netlist())
            metrics = TELEMETRY.metrics
            assert metrics.counter("compiled.cache.misses").value == 1
            assert metrics.counter("compiled.cache.hits").value == 1
            assert metrics.counter("compiled.kernels").value == 1
            assert metrics.counter("compiled.compile_seconds").value > 0


class TestKernelShape:
    def test_generates_both_entry_points(self):
        kernel = CompiledKernel(resolve_bench("figure4"))
        assert "def run_good(iv, ic):" in kernel.source
        assert "def run_fault(iv, ic, fm, fv):" in kernel.source
        assert callable(kernel.run_good)
        assert callable(kernel.run_fault)

    def test_net_order_inputs_then_levelized(self):
        netlist = resolve_bench("figure4")
        kernel = CompiledKernel(netlist)
        assert kernel.nets[:len(netlist.inputs)] == netlist.inputs
        assert kernel.gate_count == netlist.gate_count()
        assert len(kernel.nets) == len(netlist.inputs) + kernel.gate_count

    def test_branch_sites_only_on_fanout(self):
        kernel = CompiledKernel(small_netlist())
        # Every net here has fanout <= 1: stems only.
        assert kernel.branch_site == {}
        assert kernel.site_count == len(kernel.nets)

    def test_unknown_cell_rejected(self):
        with pytest.raises(FaultSimulationError, match="cannot compile"):
            _gate_lines("MAJ", "v9", "c9", ["v0"], ["c0"])


class TestSiteLookup:
    def test_unknown_stem_net_rejected(self):
        kernel = CompiledKernel(small_netlist())
        with pytest.raises(FaultSimulationError, match="no net"):
            kernel.site_for(StuckAtFault.stem("ghost", 1))

    def test_single_fanout_branch_rejected(self):
        kernel = CompiledKernel(small_netlist())
        fault = StuckAtFault("n0", Logic.ONE, gate_name="g1", pin=0)
        with pytest.raises(FaultSimulationError, match="single-fanout"):
            kernel.site_for(fault)
