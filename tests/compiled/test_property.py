"""Property test: the compiled kernel vs the interpreted simulator.

Random acyclic netlists from :func:`repro.gates.generators.random_netlist`
(every cell type, fanout, reconvergence), random four-valued input
patterns (including ``Logic.X`` and ``Logic.Z``), and every collapsed
stem/branch fault: :class:`CompiledSimulator` must agree with
:class:`NetlistSimulator` on every net, and
:class:`CompiledFaultSimulator` must reproduce the serial campaign
report exactly.
"""

import random

import pytest

from repro.compiled import CompiledFaultSimulator, CompiledSimulator
from repro.core.signal import Logic
from repro.faults.faultlist import build_fault_list
from repro.faults.serial import SerialFaultSimulator
from repro.gates.generators import random_netlist
from repro.gates.simulator import NetlistSimulator

SHAPES = [
    (2, 6, 1),    # tiny: every net observable
    (4, 20, 3),   # medium fanout
    (6, 45, 4),   # wide, reconvergent
    (3, 30, 2),   # deep and narrow
]

FOUR_VALUES = (Logic.ZERO, Logic.ONE, Logic.X, Logic.Z)


def three_valued_patterns(netlist, count, rng):
    """Mostly binary patterns with a sprinkling of X/Z inputs."""
    patterns = []
    for _ in range(count):
        pattern = {}
        for net in netlist.inputs:
            if rng.random() < 0.2:
                pattern[net] = rng.choice(FOUR_VALUES)
            else:
                pattern[net] = Logic(rng.getrandbits(1))
        patterns.append(pattern)
    return patterns


@pytest.mark.parametrize("seed", range(6))
def test_fault_free_evaluation_matches(seed):
    shape = SHAPES[seed % len(SHAPES)]
    netlist = random_netlist(*shape, seed=seed)
    rng = random.Random(seed + 100)
    interpreted = NetlistSimulator(netlist)
    compiled = CompiledSimulator(netlist)
    for pattern in three_valued_patterns(netlist, 25, rng):
        assert compiled.evaluate(pattern) \
            == interpreted.evaluate(pattern), (shape, seed, pattern)


@pytest.mark.parametrize("seed", range(4))
def test_faulty_evaluation_matches(seed):
    shape = SHAPES[seed % len(SHAPES)]
    netlist = random_netlist(*shape, seed=seed + 40)
    fault_list = build_fault_list(netlist, collapse="none")
    rng = random.Random(seed + 200)
    interpreted = NetlistSimulator(netlist)
    compiled = CompiledSimulator(netlist)
    patterns = three_valued_patterns(netlist, 6, rng)
    for name in fault_list.names():
        fault = fault_list.fault(name)
        for pattern in patterns:
            assert compiled.evaluate(pattern, fault=fault) \
                == interpreted.evaluate(pattern, fault=fault), \
                (shape, seed, name, pattern)


@pytest.mark.parametrize("bench", ["alu8", "ecc32", "mult8"])
def test_corpus_evaluation_matches(bench):
    """The parity property holds on the structured ISCAS-class corpus
    generators, not just on random netlists."""
    from repro.gates.corpus import load_bench

    netlist = load_bench(bench)
    rng = random.Random(len(bench))
    interpreted = NetlistSimulator(netlist)
    compiled = CompiledSimulator(netlist)
    for pattern in three_valued_patterns(netlist, 8, rng):
        assert compiled.evaluate(pattern) \
            == interpreted.evaluate(pattern), (bench, pattern)


@pytest.mark.parametrize("seed", range(4))
@pytest.mark.parametrize("drop", [True, False])
def test_campaign_report_matches_serial(seed, drop):
    shape = SHAPES[seed % len(SHAPES)]
    netlist = random_netlist(*shape, seed=seed + 80)
    fault_list = build_fault_list(netlist)
    rng = random.Random(seed + 300)
    patterns = three_valued_patterns(netlist, 40, rng)
    serial = SerialFaultSimulator(netlist, fault_list).run(
        patterns, drop_detected=drop)
    compiled = CompiledFaultSimulator(netlist, fault_list).run(
        patterns, drop_detected=drop)
    assert compiled.total_faults == serial.total_faults
    assert compiled.detected == serial.detected
    assert list(compiled.detected) == list(serial.detected)
    assert compiled.per_pattern == serial.per_pattern
    assert compiled.coverage_history() == serial.coverage_history()
