"""CompiledToggleModel parity with the event-driven toggle model."""

import random

import pytest

from repro.compiled import CompiledToggleModel
from repro.core.errors import SimulationError
from repro.core.signal import Logic
from repro.gates.generators import array_multiplier, random_netlist
from repro.power.toggle import ToggleCountModel


def binary_patterns(netlist, count, seed=0):
    rng = random.Random(seed)
    return [{net: Logic(rng.getrandbits(1)) for net in netlist.inputs}
            for _ in range(count)]


class TestEnergyParity:
    @pytest.mark.parametrize("netlist", [
        array_multiplier(3), random_netlist(6, 30, 3, seed=7)],
        ids=["mult3", "random"])
    def test_pattern_energies_match(self, netlist):
        event = ToggleCountModel(netlist)
        compiled = CompiledToggleModel(netlist)
        for pattern in binary_patterns(netlist, 30):
            expected = event.energy_of_pattern(pattern)
            actual = compiled.energy_of_pattern(pattern)
            assert actual == pytest.approx(expected, rel=1e-9, abs=1e-12)

    def test_power_of_sequence_matches(self):
        netlist = array_multiplier(4)
        patterns = binary_patterns(netlist, 20, seed=3)
        expected = ToggleCountModel(netlist).power_of_sequence(patterns)
        actual = CompiledToggleModel(netlist).power_of_sequence(patterns)
        assert actual == pytest.approx(expected, rel=1e-9)


class TestModelSurface:
    def test_repeated_pattern_costs_nothing(self):
        netlist = array_multiplier(3)
        model = CompiledToggleModel(netlist)
        pattern = binary_patterns(netlist, 1, seed=9)[0]
        model.energy_of_pattern(pattern)
        assert model.energy_of_pattern(pattern) == 0.0

    def test_reset_restarts_from_zero_settle(self):
        netlist = array_multiplier(3)
        model = CompiledToggleModel(netlist)
        pattern = binary_patterns(netlist, 1, seed=11)[0]
        first = model.energy_of_pattern(pattern)
        model.reset()
        assert model.energy_of_pattern(pattern) == first

    def test_non_input_rejected(self):
        netlist = array_multiplier(3)
        model = CompiledToggleModel(netlist)
        with pytest.raises(SimulationError, match="not a primary input"):
            model.energy_of_pattern({"no-such-net": Logic.ONE})

    def test_evaluated_gates_counts_full_kernel_runs(self):
        netlist = array_multiplier(3)
        model = CompiledToggleModel(netlist)
        assert model.evaluated_gates == 0
        patterns = binary_patterns(netlist, 5, seed=13)
        for pattern in patterns:
            model.energy_of_pattern(pattern)
        # One settle plus at most one evaluation per applied pattern,
        # each a full-netlist kernel run.
        assert model.evaluated_gates % netlist.gate_count() == 0
        assert model.evaluated_gates \
            <= (len(patterns) + 1) * netlist.gate_count()
        assert model.evaluated_gates >= 2 * netlist.gate_count()
