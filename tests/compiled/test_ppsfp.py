"""PPSFP runner semantics: packing, blocks, dropping, telemetry."""

import random

import pytest

from repro.compiled import (WORD_BITS, CompiledFaultSimulator,
                            CompiledSimulator, pack_patterns)
from repro.core.errors import SimulationError
from repro.core.signal import Logic
from repro.faults.faultlist import build_fault_list
from repro.faults.serial import SerialFaultSimulator
from repro.gates.simulator import NetlistSimulator
from repro.parallel.remote import resolve_bench
from repro.telemetry import TELEMETRY, telemetry_session


@pytest.fixture(autouse=True)
def _clean_telemetry():
    TELEMETRY.disable()
    TELEMETRY.reset()
    yield
    TELEMETRY.disable()
    TELEMETRY.reset()


def figure4_patterns(count, seed=0):
    netlist = resolve_bench("figure4")
    rng = random.Random(seed)
    return netlist, [{net: Logic(rng.getrandbits(1))
                      for net in netlist.inputs}
                     for _ in range(count)]


class TestPacking:
    def test_bit_i_is_pattern_i(self):
        patterns = [{"a": Logic.ONE}, {"a": Logic.ZERO}, {"a": Logic.X},
                    {"a": Logic.Z}, {"a": Logic.ONE}]
        iv, ic = pack_patterns(("a",), patterns)
        assert iv == [0b10001]
        # X and Z both pack as don't-care (care bit clear).
        assert ic == [0b10011]

    def test_canonical_invariant(self):
        rng = random.Random(3)
        values = [Logic.ZERO, Logic.ONE, Logic.X, Logic.Z]
        patterns = [{"a": rng.choice(values), "b": rng.choice(values)}
                    for _ in range(WORD_BITS)]
        iv, ic = pack_patterns(("a", "b"), patterns)
        for v, c in zip(iv, ic):
            assert v & ~c == 0

    def test_missing_input_matches_interpreted_error(self):
        with pytest.raises(SimulationError,
                           match="missing value for primary input 'b'"):
            pack_patterns(("a", "b"), [{"a": Logic.ONE}])


class TestCompiledSimulator:
    def test_z_input_is_echoed_raw(self):
        netlist, _ = figure4_patterns(0)
        pattern = {net: Logic.Z for net in netlist.inputs}
        compiled = CompiledSimulator(netlist).evaluate(pattern)
        interpreted = NetlistSimulator(netlist).evaluate(pattern)
        assert compiled == interpreted
        assert compiled[netlist.inputs[0]] is Logic.Z

    def test_stem_fault_overrides_input_echo(self):
        netlist, patterns = figure4_patterns(1)
        fault_list = build_fault_list(netlist, collapse="none")
        interpreted = NetlistSimulator(netlist)
        compiled = CompiledSimulator(netlist)
        for name in fault_list.names():
            fault = fault_list.fault(name)
            assert compiled.evaluate(patterns[0], fault=fault) \
                == interpreted.evaluate(patterns[0], fault=fault), name

    def test_outputs_in_declaration_order(self):
        netlist, patterns = figure4_patterns(1)
        assert CompiledSimulator(netlist).outputs(patterns[0]) \
            == NetlistSimulator(netlist).outputs(patterns[0])


class TestMultiBlockCampaign:
    def test_partial_and_full_blocks_match_serial(self):
        # 150 patterns = two full 64-pattern words plus a 22-bit tail.
        netlist, patterns = figure4_patterns(2 * WORD_BITS + 22)
        fault_list = build_fault_list(netlist)
        for drop in (True, False):
            serial = SerialFaultSimulator(netlist, fault_list).run(
                patterns, drop_detected=drop)
            compiled = CompiledFaultSimulator(netlist, fault_list).run(
                patterns, drop_detected=drop)
            assert compiled.detected == serial.detected
            assert list(compiled.detected) == list(serial.detected)
            assert compiled.per_pattern == serial.per_pattern
            assert compiled.coverage_history() == serial.coverage_history()

    def test_empty_pattern_list(self):
        netlist, _ = figure4_patterns(0)
        report = CompiledFaultSimulator(netlist).run([])
        assert report.detected == {}
        assert report.per_pattern == []


class TestSinglePatternProbes:
    def test_detects_matches_serial(self):
        netlist, patterns = figure4_patterns(8)
        fault_list = build_fault_list(netlist)
        serial = SerialFaultSimulator(netlist, fault_list)
        compiled = CompiledFaultSimulator(netlist, fault_list)
        for pattern in patterns:
            for name in fault_list.names():
                assert compiled.detects(pattern, name) \
                    == serial.detects(pattern, name)

    def test_detecting_preserves_query_order(self):
        netlist, patterns = figure4_patterns(4)
        fault_list = build_fault_list(netlist)
        names = list(fault_list.names())[::-1]
        compiled = CompiledFaultSimulator(netlist, fault_list)
        hits = compiled.detecting(patterns[0], names)
        assert hits == [name for name in names
                        if compiled.detects(patterns[0], name)]


class TestTelemetry:
    def test_campaign_counters(self):
        netlist, patterns = figure4_patterns(70)
        with telemetry_session():
            CompiledFaultSimulator(netlist).run(patterns)
            metrics = TELEMETRY.metrics
            assert metrics.counter("compiled.blocks").value == 2
            assert metrics.counter("compiled.gate_evals").value > 0
            assert metrics.counter("compiled.eval_seconds").value > 0
            assert metrics.gauge(
                "compiled.gate_evals_per_second").value > 0

    def test_silent_when_disabled(self):
        netlist, patterns = figure4_patterns(4)
        CompiledFaultSimulator(netlist).run(patterns)
        assert TELEMETRY.metrics.names() == ()
