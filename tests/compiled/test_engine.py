"""Engine selection plumbing: resolve, dispatch, ATPG and servant."""

import pytest

from repro.compiled import (CompiledFaultSimulator, fault_simulator_for,
                            resolve_engine)
from repro.core.errors import FaultSimulationError
from repro.core.signal import Logic
from repro.faults.atpg import generate_test_set
from repro.faults.detection import build_detection_table
from repro.faults.faultlist import build_fault_list
from repro.faults.serial import SerialFaultSimulator
from repro.faults.virtual import TestabilityServant
from repro.gates.generators import ip1_block
from repro.parallel.remote import resolve_bench


class TestResolution:
    def test_none_means_event(self):
        assert resolve_engine(None) == "event"

    def test_known_engines_pass_through(self):
        assert resolve_engine("event") == "event"
        assert resolve_engine("compiled") == "compiled"

    def test_unknown_engine_rejected(self):
        with pytest.raises(FaultSimulationError, match="unknown engine"):
            resolve_engine("jit")

    def test_dispatch_types(self):
        netlist = resolve_bench("figure4")
        assert isinstance(fault_simulator_for("event", netlist),
                          SerialFaultSimulator)
        assert isinstance(fault_simulator_for("compiled", netlist),
                          CompiledFaultSimulator)
        assert isinstance(fault_simulator_for(None, netlist),
                          SerialFaultSimulator)


class TestAtpgParity:
    def test_test_sets_byte_identical(self):
        netlist = resolve_bench("figure4")
        fault_list = build_fault_list(netlist)
        event = generate_test_set(netlist, fault_list, random_patterns=16,
                                  seed=2, engine="event")
        compiled = generate_test_set(netlist, fault_list,
                                     random_patterns=16, seed=2,
                                     engine="compiled")
        assert compiled.patterns == event.patterns
        assert compiled.detected == event.detected
        assert list(compiled.detected) == list(event.detected)
        assert compiled.untestable == event.untestable
        assert compiled.aborted == event.aborted


class TestServantEngine:
    def test_detection_tables_identical(self):
        netlist = ip1_block()
        fault_list = build_fault_list(netlist)
        event = TestabilityServant(netlist, fault_list)
        compiled = TestabilityServant(netlist, fault_list,
                                      engine="compiled")
        undetected = fault_list.names()
        bits = [Logic.ONE if i % 2 else Logic.ZERO
                for i in range(len(netlist.inputs))]
        assert compiled.detection_table(bits, undetected) \
            == event.detection_table(bits, undetected)

    def test_unknown_engine_rejected(self):
        with pytest.raises(FaultSimulationError, match="unknown engine"):
            TestabilityServant(ip1_block(), engine="jit")

    def test_detection_table_accepts_compiled_simulator(self):
        netlist = ip1_block()
        fault_list = build_fault_list(netlist)
        servant = TestabilityServant(netlist, fault_list,
                                     engine="compiled")
        inputs = {net: Logic.ZERO for net in netlist.inputs}
        table = build_detection_table(netlist, fault_list, inputs,
                                      simulator=servant.simulator)
        reference = build_detection_table(netlist, fault_list, inputs)
        assert table == reference
