"""Lane-packed fault probing: 64 faults per kernel run, same answers.

``CompiledSimulator.outputs_for_faults`` packs distinct faults into
distinct bit lanes of one replicated pattern, so detection-table
construction (and everything above it: TestabilityServant, ATPG's
random phase) stops probing one pattern per call.  The contract is
exact equality with the per-fault probing path on every stimulus,
including unknown (X/Z) inputs.
"""

import random

import pytest

from repro.compiled import CompiledSimulator
from repro.core import Logic
from repro.faults import build_fault_list
from repro.faults.atpg import generate_test_set
from repro.faults.detection import build_detection_table
from repro.gates import NetlistSimulator, load_bench

BENCHES = ["c17", "figure4", "alu8"]


def random_stimulus(netlist, rng, with_unknowns=False):
    choices = ([Logic.ZERO, Logic.ONE, Logic.X, Logic.Z]
               if with_unknowns else [Logic.ZERO, Logic.ONE])
    return {net: rng.choice(choices) for net in netlist.inputs}


class TestOutputsForFaults:
    @pytest.mark.parametrize("bench", BENCHES)
    @pytest.mark.parametrize("with_unknowns", [False, True])
    def test_matches_per_fault_probing(self, bench, with_unknowns):
        netlist = load_bench(bench)
        fault_list = build_fault_list(netlist)
        # >64 faults exercises multi-chunk packing on alu8.
        names = fault_list.names()[:96]
        faults = [fault_list.fault(name) for name in names]
        compiled = CompiledSimulator(netlist)
        rng = random.Random(hash(bench) & 0xFFFF)
        for _ in range(4):
            stimulus = random_stimulus(netlist, rng, with_unknowns)
            packed = compiled.outputs_for_faults(stimulus, faults)
            for fault, outputs in zip(faults, packed):
                assert outputs == compiled.outputs(stimulus,
                                                   fault=fault)

    def test_event_engine_agrees(self):
        netlist = load_bench("c17")
        fault_list = build_fault_list(netlist)
        faults = [fault_list.fault(name)
                  for name in fault_list.names()]
        compiled = CompiledSimulator(netlist)
        event = NetlistSimulator(netlist)
        stimulus = {net: Logic.ONE for net in netlist.inputs}
        packed = compiled.outputs_for_faults(stimulus, faults)
        for fault, outputs in zip(faults, packed):
            assert outputs == event.outputs(stimulus, fault=fault)


class TestDetectionTableParity:
    @pytest.mark.parametrize("bench", BENCHES)
    def test_tables_identical_across_engines(self, bench):
        netlist = load_bench(bench)
        fault_list = build_fault_list(netlist)
        rng = random.Random(5)
        stimulus = random_stimulus(netlist, rng)
        event = build_detection_table(netlist, fault_list, stimulus)
        compiled = build_detection_table(
            netlist, fault_list, stimulus,
            simulator=CompiledSimulator(netlist))
        assert compiled == event
        assert compiled.rows == event.rows


class TestAtpgByteIdentity:
    @pytest.mark.parametrize("bench", ["c17", "figure4"])
    def test_test_sets_identical_across_engines(self, bench):
        netlist = load_bench(bench)
        event = generate_test_set(netlist, random_patterns=16, seed=1)
        compiled = generate_test_set(netlist, random_patterns=16,
                                     seed=1, engine="compiled")
        assert compiled.patterns == event.patterns
        assert compiled.detected == event.detected
        assert list(compiled.detected) == list(event.detected)
        assert compiled.untestable == event.untestable

    def test_corpus_bench_identical_under_backtrack_budget(self):
        """alu8 has random-resistant faults; a tight budget keeps the
        run quick and the aborted list must agree across engines too."""
        netlist = load_bench("alu8")
        event = generate_test_set(netlist, random_patterns=64, seed=1,
                                  max_backtracks=50)
        compiled = generate_test_set(netlist, random_patterns=64,
                                     seed=1, max_backtracks=50,
                                     engine="compiled")
        assert compiled.patterns == event.patterns
        assert compiled.detected == event.detected
        assert list(compiled.detected) == list(event.detected)
        assert compiled.untestable == event.untestable
        assert compiled.aborted == event.aborted
