"""An IP marketplace session: catalogs, negotiation, fees, protection.

Mirrors the paper's Figure 1 setting: one IP user, two independent IP
providers, each with its own JavaCAD server and its own model-release
policy.  The user browses catalogs, negotiates estimator choices under
a fee budget, runs a mixed design with components from both vendors,
and the IP-protection machinery is exercised along the way:

* the restricted marshaller refuses to ship a netlist;
* non-trusted downloaded code cannot touch the file system and can only
  connect back to its own provider;
* the provider's implementation carries a watermark the vendor can
  prove in court, which survives and stays functionally invisible.

Run with:  python examples/ip_marketplace.py
"""

from repro.core import (Circuit, Fanout, PrimaryOutput,
                        RandomPrimaryInput, SimulationController,
                        WordConnector)
from repro.core.errors import (BillingError, MarshalError,
                               SecurityViolationError)
from repro.estimation import AVERAGE_POWER, ByName, SetupController
from repro.gates import NetlistSimulator, array_multiplier
from repro.ip import (BillingAccount, IPProvider, MultFastLowPower,
                      Negotiation, ProviderConnection, embed_watermark,
                      verify_watermark)
from repro.net import LAN, WAN, VirtualClock
from repro.rmi import marshal
from repro.rtl import WordAdder


def main() -> None:
    width = 8

    # Two competing vendors publish multipliers with different fees.
    fastcorp = IPProvider("fast.multipliers.example")
    fastcorp.publish_multiplier(width)
    cheapinc = IPProvider("cheap.cores.example")
    cheapinc.publish_multiplier(width, name="BudgetMult")

    clock = VirtualClock()
    fast = ProviderConnection(fastcorp, LAN, clock=clock)
    cheap = ProviderConnection(cheapinc, WAN, clock=clock)
    print("fastcorp catalog :", fast.list_components())
    print("cheapinc catalog :", cheap.list_components())

    # --- negotiation: what does accurate power estimation cost?
    negotiation = Negotiation(fast, "MultFastLowPower")
    print("\nestimator offers from fastcorp:")
    for offer in negotiation.offers():
        flag = "*" if offer.unpredictable_time else ""
        print(f"  {offer.type:20s} err {offer.avg_error_pct:5.1f}%  "
              f"{offer.cost_cents_per_pattern:4.2f} c/pattern  "
              f"remote={offer.remote}{flag}")
    best_free = negotiation.select(max_cost=0.0)
    best_any = negotiation.select()
    print(f"best free estimator: {best_free.type} "
          f"({best_free.avg_error_pct}% error)")
    print(f"best overall       : {best_any.type}, projected fee for 60 "
          f"patterns: "
          f"{negotiation.estimated_session_fee(best_any, 60):.1f} cents")

    # --- a design mixing both vendors' IP with a local adder.
    a = WordConnector(width)
    b = WordConnector(width)
    # Connectors are point-to-point: both multipliers read the operands
    # through explicit fanout modules (which could model per-branch net
    # delays if this were a timing study).
    a1, a2 = WordConnector(width), WordConnector(width)
    b1, b2 = WordConnector(width), WordConnector(width)
    fan_a = Fanout(width, a, [a1, a2], name="FANA")
    fan_b = Fanout(width, b, [b1, b2], name="FANB")
    p1 = WordConnector(2 * width)
    p2 = WordConnector(2 * width)
    total = WordConnector(2 * width)
    ina = RandomPrimaryInput(width, a, patterns=60, seed=3, name="INA")
    inb = RandomPrimaryInput(width, b, patterns=60, seed=4, name="INB")
    mult_fast = MultFastLowPower(width, a1, b1, p1, fast, name="MULT1")
    mult_cheap = MultFastLowPower(width, a2, b2, p2, cheap,
                                  component="BudgetMult", name="MULT2")
    adder = WordAdder(2 * width, p1, p2, total, name="SUM")
    out = PrimaryOutput(2 * width, total, name="OUT")
    circuit = Circuit(ina, inb, fan_a, fan_b, mult_fast, mult_cheap,
                      adder, out, name="marketplace")

    # --- fee-capped evaluation: the budget stops runaway spending.
    tight_budget = BillingAccount(budget=5.0)
    setup = SetupController(name="capped", billing=tight_budget)
    setup.set(AVERAGE_POWER, ByName("gate-level-toggle"))
    setup.apply(circuit)
    controller = SimulationController(circuit, setup=setup, clock=clock)
    try:
        controller.start()
        print("\nbudget was sufficient")
    except BillingError as exc:
        print(f"\nbudget cap enforced mid-run: {exc}")
    finally:
        controller.teardown()

    # A realistic budget completes, with an itemized ledger.
    billing = BillingAccount(budget=100.0)
    setup2 = SetupController(name="funded", billing=billing)
    setup2.set(AVERAGE_POWER, ByName("gate-level-toggle"))
    setup2.apply(circuit)
    controller2 = SimulationController(circuit, setup=setup2, clock=clock)
    stats = controller2.start()
    print(f"funded run: {stats.instants} patterns, fees "
          f"{billing.total:.1f} cents, by estimator "
          f"{billing.by_estimator()}")
    controller2.teardown()

    # --- IP protection demonstrations -------------------------------------
    print("\nIP protection:")
    try:
        marshal(array_multiplier(4))
    except MarshalError as exc:
        print(f"  marshaller refused a netlist: {str(exc)[:70]}...")

    policy = fast.policy
    try:
        policy.check_file_access("/etc/passwd")
    except SecurityViolationError as exc:
        print(f"  downloaded code denied file access: {str(exc)[:60]}...")
    try:
        policy.check_connect("cheap.cores.example")
    except SecurityViolationError:
        print("  fastcorp's code may not phone cheapinc: connect denied")

    # --- evaluation -> purchase: license + fingerprinted delivery.
    from repro.gates import write_bench
    from repro.ip import LicenseServant, purchase_component
    from repro.rmi import RemoteStub

    desk = LicenseServant(array_multiplier(4, name="Mult4"),
                          price_cents=900.0,
                          provider_secret="fastcorp-master")
    fastcorp.server.bind("mult4.sales", desk,
                         LicenseServant.REMOTE_METHODS)
    sales = RemoteStub(fast.transport, "mult4.sales",
                       LicenseServant.REMOTE_METHODS)
    license_, bought = purchase_component(sales, "acme-corp", 2000.0)
    print(f"\npurchase: acme-corp licensed {license_.component} "
          f"(license verifies: {sales.verify(license_.as_wire())})")
    leaker = desk.identify_leak(write_bench(bought))
    print(f"  delivered netlist is buyer-fingerprinted; a leaked copy "
          f"traces to: {leaker}")

    # --- watermarking: vendor-provable, functionally invisible.
    secret = array_multiplier(4, name="wm-demo")
    marked = embed_watermark(secret, key="fastcorp-k-2099")
    same = all(
        NetlistSimulator(secret).evaluate_int(word)[o]
        == NetlistSimulator(marked).evaluate_int(word)[o]
        for word in (0, 7, 42, 255) for o in secret.outputs)
    print(f"  watermark embedded: +{marked.gate_count() - secret.gate_count()}"
          f" gates, functionally identical: {same}")
    print(f"  verifies with the right key : "
          f"{verify_watermark(marked, 'fastcorp-k-2099')}")
    print(f"  verifies with a wrong key   : "
          f"{verify_watermark(marked, 'forged-key')}")


if __name__ == "__main__":
    main()
