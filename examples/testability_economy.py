"""The testability economy: analysis, generation, and protected sale.

The paper's testability thread, end to end:

1. the provider analyses its component's testability statically (SCOAP
   controllability/observability -- the precharacterized estimate the
   open specification can carry);
2. it generates a high-coverage test set (random + PODEM, with
   redundancy proofs);
3. it sells the sequence through a protected vault ("a good test
   sequence is IP that might need protection"): free coverage preview,
   patterns released only against payment;
4. the user, who cannot see the netlist, verifies the claimed coverage
   with virtual fault simulation -- and finally fault-simulates the IP
   inside a *sequential* design, where fault effects must cross state
   registers (the paper's sequential extension).

Run with:  python examples/testability_economy.py
"""

import random

from repro.bench import functional_model_of
from repro.core import BillingError, Logic
from repro.faults import (SequentialSerialFaultSimulator,
                          SequentialVirtualFaultSimulator,
                          TestabilityServant, build_fault_list,
                          generate_test)
from repro.gates import ScoapAnalysis, c17
from repro.ip import TestSequenceVault, buy_test_sequence
from repro.net import LAN
from repro.rmi import JavaCADServer, RemoteStub


def main() -> None:
    netlist = c17()  # the provider's (secret) implementation
    fault_list = build_fault_list(netlist)

    # --- 1. static testability analysis (provider side) -----------------
    analysis = ScoapAnalysis(netlist)
    print("SCOAP boundary summary (publishable, structure-free):")
    for net, numbers in sorted(analysis.boundary_summary().items()):
        print(f"  {net:4s} cc0={numbers['cc0']:2d} "
              f"cc1={numbers['cc1']:2d} co={numbers['co']:2d}")
    hardest_net, effort = analysis.hardest_fault()
    print(f"hardest site by SCOAP: {hardest_net} (effort {effort})")

    # --- 2. test generation: PODEM finds or refutes -----------------------
    sample = fault_list.names()[0]
    result = generate_test(netlist, fault_list.fault(sample))
    pattern = "".join(str(int(result.pattern[net]))
                      for net in netlist.inputs)
    print(f"\nPODEM: fault {sample} detected by pattern "
          f"{''.join(netlist.inputs)}={pattern} "
          f"({result.backtracks} backtracks)")

    # --- 3. the vault: preview free, patterns for money --------------------
    vault = TestSequenceVault(netlist, fault_list,
                              price_per_pattern=2.5, seed=4)
    server = JavaCADServer("test.vendor.example")
    server.bind("c17.tests", vault, TestSequenceVault.REMOTE_METHODS)
    stub = RemoteStub(server.connect(LAN), "c17.tests",
                      TestSequenceVault.REMOTE_METHODS)

    offer = stub.preview()
    print(f"\nvault preview: {offer['patterns']} patterns, "
          f"{offer['coverage']:.1%} coverage, "
          f"{offer['price_cents']:.1f} cents")
    try:
        buy_test_sequence(stub, "underfunded-corp", budget=1.0)
    except BillingError as exc:
        print(f"underfunded buyer rejected without spending: "
              f"{str(exc)[:60]}...")
    patterns = buy_test_sequence(stub, "acme-corp", budget=100.0)
    print(f"acme-corp bought {len(patterns)} patterns; vault revenue "
          f"{vault.revenue():.1f} cents")

    # --- 4. sequential virtual fault simulation ---------------------------
    from repro.bench import build_sequential_wrapper

    design = build_sequential_wrapper(netlist, name="c17-seq")
    servant = TestabilityServant(netlist, fault_list)
    virtual = SequentialVirtualFaultSimulator(
        design, servant, functional_model_of(netlist))
    serial = SequentialSerialFaultSimulator(design, netlist, fault_list)
    rng = random.Random(8)
    sequence = [{net: Logic(rng.getrandbits(1))
                 for net in design.primary_inputs} for _ in range(20)]
    virtual_report = virtual.run(sequence)
    serial_report = serial.run(sequence)
    late = sum(1 for index in virtual_report.detected.values()
               if index >= 1)
    print(f"\nsequential design (registers wrap the IP): "
          f"{virtual_report.detected_count}/"
          f"{virtual_report.total_faults} faults in 20 clock cycles "
          f"({virtual_report.coverage:.1%})")
    print(f"  {late} detections crossed at least one register "
          f"(multi-cycle propagation)")
    print(f"  detection-table fetches: {virtual.remote_table_fetches} "
          f"(cached per IP input configuration)")
    print(f"  matches full-knowledge sequential baseline: "
          f"{dict(virtual_report.detected) == dict(serial_report.detected)}")


if __name__ == "__main__":
    main()
