"""Virtual fault simulation of an IP-based design (paper Figures 4-5).

The user's half adder contains IP block IP1 whose gate-level
implementation is hidden on the provider's server.  The example walks
through the two-phase protocol:

1. the user composes the design fault list from IP1's *symbolic* fault
   list;
2. per test pattern, the provider returns a detection table for IP1's
   current input configuration, and the user injects each erroneous
   output pattern into the otherwise fault-free design to see which
   faults reach a primary output.

The run finishes with a random test set, incremental-coverage history,
and a cross-check against a flat full-knowledge fault simulator.

Run with:  python examples/virtual_fault_simulation.py
"""

import random

from repro.bench import (build_figure4, figure4_flat_netlist,
                         figure4_internal_faults, format_table)
from repro.core.signal import Logic
from repro.faults import FaultList, SerialFaultSimulator, reports_agree


def main() -> None:
    setup = build_figure4(collapse="none")

    # Phase 1: the symbolic fault list crosses the boundary; the netlist
    # never does.
    names = setup.simulator.build_fault_list()
    print(f"design fault list ({len(names)} faults), examples:",
          sorted(names)[:6])

    # The paper's worked example: IP1's detection table for input 10.
    table = setup.servant.detection_table(
        [Logic.ONE, Logic.ZERO], setup.fault_list.names())
    print("\nIP1 detection table for (IIP1, IIP2) = (1, 0):")
    print(format_table(
        ["Faulty output (OIP1, OIP2)", "Fault list"],
        [["".join(str(int(bit)) for bit in pattern),
          ", ".join(sorted(faults))]
         for pattern, faults in sorted(
             table.rows.items(),
             key=lambda item: tuple(int(b) for b in item[0]))]))

    # Pattern ABCD=1100 does not detect I3sa0 (D=0 blocks O1)...
    report = setup.simulator.run([{"A": 1, "B": 1, "C": 0, "D": 0}])
    print(f"\npattern 1100 detects I3sa0: "
          f"{'IP1:I3sa0' in report.detected}")
    # ...but 1101 does, along with I4sa1 (same detection-table row).
    fresh = build_figure4(collapse="none")
    report = fresh.simulator.run([{"A": 1, "B": 1, "C": 0, "D": 1}])
    print(f"pattern 1101 detects I3sa0: "
          f"{'IP1:I3sa0' in report.detected}, "
          f"I4sa1: {'IP1:I4sa1' in report.detected}")

    # A full random test set with fault dropping and coverage history.
    run = build_figure4(collapse="none")
    rng = random.Random(7)
    patterns = [{name: rng.getrandbits(1) for name in "ABCD"}
                for _ in range(20)]
    report = run.simulator.run(patterns)
    history = report.coverage_history()
    print(f"\n20 random patterns: {report.detected_count}/"
          f"{report.total_faults} faults detected "
          f"({report.coverage:.1%} coverage)")
    print("incremental coverage:",
          " ".join(f"{c:.0%}" for c in history[:10]), "...")
    client = run.simulator.ip_blocks[0]
    print(f"remote detection-table fetches: "
          f"{client.remote_table_fetches} (cached by input config), "
          f"injection runs: {run.simulator.injection_runs}")

    # Cross-check: a flat, full-knowledge serial fault simulator over
    # the same design detects exactly the same internal faults.
    internal = figure4_internal_faults(run.fault_list)
    flat = SerialFaultSimulator(
        figure4_flat_netlist(),
        FaultList("IP1", {n: run.fault_list.fault(n) for n in internal}))
    verifier = build_figure4(collapse="none")
    verifier.simulator.ip_blocks[0].stub = _restrict(verifier, internal)
    virtual = verifier.simulator.run(patterns)
    serial = flat.run([{k: Logic(v) for k, v in p.items()}
                       for p in patterns])
    agree = reports_agree(virtual, serial,
                          rename=lambda q: q.split(":", 1)[1])
    print(f"\nvirtual == flat serial baseline: {agree}")


def _restrict(setup, internal):
    """A servant view restricted to IP-internal faults."""
    from repro.faults import FaultList, TestabilityServant
    restricted = FaultList(
        "IP1", {name: setup.fault_list.fault(name) for name in internal})
    return TestabilityServant(setup.servant.netlist, restricted)


if __name__ == "__main__":
    main()
