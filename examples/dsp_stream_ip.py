"""Behavioural-level IP: a DSP stream pipeline with a remote filter.

The paper notes that custom connectors can carry abstract design
representations "such as video signals handled by a DSP".  Here a
signal-processing chain runs at that level: sample frames flow through
stream connectors, and the centre-piece filter is an IP component whose
coefficients are the provider's secret -- the public part forwards each
frame over RMI and the convolution happens on the provider's server
(per-session state keeps the stream continuous).

Run with:  python examples/dsp_stream_ip.py
"""

import math

from repro.behav import (Decimator, FIRFilter, Frame, SampleMap,
                         StreamConnector, StreamProbe, StreamSource)
from repro.core import (Circuit, ModuleSkeleton, PortDirection,
                        SimulationController)
from repro.core.errors import MarshalError
from repro.net import LAN, VirtualClock
from repro.rmi import JavaCADServer, RemoteStub, current_server_context, \
    marshal


class SecretFilterServant:
    """Provider-side private part: the coefficients never leave."""

    REMOTE_METHODS = ("filter_frame", "reset")

    def __init__(self, coefficients):
        self._coefficients = tuple(coefficients)
        self._tails = {}

    def reset(self, session):
        self._tails.pop(session, None)

    def filter_frame(self, session, frame):
        taps = len(self._coefficients)
        tail = self._tails.get(session, (0,) * (taps - 1))
        history = list(tail) + list(frame.samples)
        outputs = [
            sum(c * x for c, x in zip(reversed(self._coefficients),
                                      history[i:i + taps]))
            for i in range(len(frame.samples))
        ]
        if taps > 1:
            self._tails[session] = tuple(history[-(taps - 1):])
        context = current_server_context()
        if context is not None:
            context.charge(1e-4 * len(frame.samples) * taps)
        return Frame(outputs, frame.rate)


class RemoteStreamFilter(ModuleSkeleton):
    """Public part: forwards frames to the provider's secret filter."""

    def __init__(self, stub, session, source, sink, name=None):
        super().__init__(name=name)
        self.stub = stub
        self.session = session
        self.add_port("in", PortDirection.IN, 1, connector=source)
        self.add_port("out", PortDirection.OUT, 1, connector=sink)

    def process_input_event(self, token, ctx):
        session = f"{self.session}.s{ctx.scheduler_id}"
        filtered = self.stub.filter_frame(session, token.value)
        self.emit("out", filtered, ctx)


def main() -> None:
    # --- provider side: publish the secret 5-tap low-pass filter.
    coefficients = [1, 4, 6, 4, 1]  # binomial low-pass, the "IP"
    server = JavaCADServer("dsp.provider.example")
    server.bind("lowpass5", SecretFilterServant(coefficients),
                SecretFilterServant.REMOTE_METHODS)

    # --- user side: a noisy tone, remote filtering, local post-process.
    clock = VirtualClock()
    transport = server.connect(LAN, clock=clock)
    stub = RemoteStub(transport, "lowpass5",
                      SecretFilterServant.REMOTE_METHODS)

    samples_per_frame = 32
    frames = []
    for frame_index in range(8):
        samples = []
        for i in range(samples_per_frame):
            n = frame_index * samples_per_frame + i
            tone = 100 * math.sin(2 * math.pi * n / 64)
            noise = 40 * math.sin(2 * math.pi * n / 3.1)
            samples.append(int(tone + noise))
        frames.append(Frame(samples, rate=64))

    raw = StreamConnector("raw")
    filtered = StreamConnector("filtered")
    scaled = StreamConnector("scaled")
    decimated = StreamConnector("decimated")

    source = StreamSource(frames, raw, name="SRC")
    ip_filter = RemoteStreamFilter(stub, "dsp-session", raw, filtered,
                                   name="LP-IP")
    gain = SampleMap(lambda s: s // sum(coefficients), filtered, scaled,
                     name="GAIN")
    decimator = Decimator(4, scaled, decimated, name="DEC")
    probe = StreamProbe(decimated, name="PRB")
    circuit = Circuit(source, ip_filter, gain, decimator, probe)

    controller = SimulationController(circuit, clock=clock)
    controller.start()
    clock.sync()

    output = probe.samples(controller.context)
    print(f"processed {len(frames)} frames "
          f"({len(frames) * samples_per_frame} samples) -> "
          f"{len(output)} decimated output samples")
    print("first outputs:", output[:10])
    in_peak = max(abs(s) for f in frames for s in f.samples)
    out_peak = max(abs(s) for s in output)
    print(f"noise suppressed: input peak {in_peak}, "
          f"filtered peak {out_peak}")
    print(f"remote filter calls: {stub.calls}, "
          f"virtual time: cpu {clock.cpu:.2f}s wall {clock.wall:.2f}s")

    # And a local reference filter confirms the remote one is faithful.
    ref_in, ref_out = StreamConnector(), StreamConnector()
    ref_src = StreamSource(frames, ref_in, name="RSRC")
    reference = FIRFilter(coefficients, ref_in, ref_out, name="REF")
    ref_probe = StreamProbe(ref_out, name="RPRB")
    ref_ctrl = SimulationController(Circuit(ref_src, reference,
                                            ref_probe))
    ref_ctrl.start()
    reference_samples = [s // sum(coefficients)
                         for s in ref_probe.samples(ref_ctrl.context)]
    assert reference_samples[::4] == output
    print("remote result matches a local reference filter exactly")

    # The coefficients themselves can never cross back: only frames are
    # marshallable, and the servant object is not.
    try:
        marshal(SecretFilterServant(coefficients))
    except MarshalError:
        print("provider's filter object is unmarshallable "
              "(coefficients stay secret)")


if __name__ == "__main__":
    main()
