"""Quickstart: the paper's Figure 2, line for line.

An IP user builds a design computing the product of two random 16-bit
words stored in proprietary register macros (local modules), and
evaluates a high-performance low-power multiplier sold by an IP
provider (MULT is a remote IP component).  Instantiating the remote
module looks exactly like instantiating a local one -- it just cites
the provider's server in its constructor.

Run with:  python examples/quickstart.py
"""

from repro.core import (Circuit, PrimaryOutput, RandomPrimaryInput,
                        Register, SimulationController, WordConnector)
from repro.estimation import AVERAGE_POWER, ByName, SetupController
from repro.ip import BillingAccount, IPProvider, MultFastLowPower, \
    ProviderConnection
from repro.net import LAN, VirtualClock


def main() -> None:
    width = 16

    # --- provider side (normally a different company, reachable over
    # --- the Internet): author and publish the multiplier IP.
    vendor = IPProvider("provider.host.name")
    vendor.publish_multiplier(width)

    # --- IP user side: connect to the provider over the (simulated) LAN.
    clock = VirtualClock()
    provider = ProviderConnection(vendor, LAN, clock=clock)
    print("provider catalog:", provider.list_components())

    # The Figure 2 design, almost token for token.
    A = WordConnector(width)
    AR = WordConnector(width)
    INA = RandomPrimaryInput(width, A, patterns=100, seed=0, name="INA")
    REGA = Register(width, A, AR, name="REGA")

    B = WordConnector(width)
    BR = WordConnector(width)
    INB = RandomPrimaryInput(width, B, patterns=100, seed=1, name="INB")
    REGB = Register(width, B, BR, name="REGB")

    O = WordConnector(2 * width)
    OUT = PrimaryOutput(2 * width, O, name="OUT")

    MULT = MultFastLowPower(width, AR, BR, O, provider)

    circuit = Circuit(INA, REGA, INB, REGB, MULT, OUT, name="example")

    # Simulation setup: evaluate average power with the provider's
    # accurate (remote, billed) gate-level estimator.
    billing = BillingAccount(budget=50.0)
    setup = SetupController(name="quickstart", billing=billing)
    setup.set(AVERAGE_POWER, ByName("gate-level-toggle"))
    setup.apply(circuit)

    controller = SimulationController(circuit, setup=setup, clock=clock)
    stats = controller.start()
    powers = MULT.collect_power(controller.context)
    clock.sync()

    print(f"simulated {stats.instants} patterns, {stats.events} events")
    print(f"virtual CPU {clock.cpu:.1f}s, real {clock.wall:.1f}s "
          f"(network: {provider.network.name})")
    products = [value.value for _t, value in OUT.trace(controller.context)
                if value.known]
    print(f"first products: {products[:5]}")
    print(f"remote power estimates (mW), first 5: "
          f"{[round(p, 4) for p in powers[:5]]}")
    print(f"estimation fees: {billing.total:.1f} cents "
          f"({len(billing.ledger)} billed invocations)")
    print(f"accurate gate-level timing (remote method): "
          f"{MULT.accurate_timing():.2f} ns")


if __name__ == "__main__":
    main()
