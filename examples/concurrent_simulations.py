"""Concurrent simulations and mixed-level design.

Two features the paper highlights about the JavaCAD backplane:

* **Concurrent schedulers** -- multiple simulations of the *same*
  design instance run on separate threads with different setups, and
  cannot interfere: every connector value and module state is stored in
  per-scheduler lookup tables.
* **Mixed abstraction levels** -- some components at the RT level, some
  at the gate level, connected through word/bit connectors in one
  design (here an RTL multiplier feeding a gate-level ripple adder).

Run with:  python examples/concurrent_simulations.py
"""

from repro.core import (Circuit, PrimaryOutput, RandomPrimaryInput,
                        SimulationController, WordConnector)
from repro.estimation import AVERAGE_POWER, ByName, SetupController
from repro.gates import GateLevelModule, ripple_carry_adder
from repro.ip import IPProvider, MultFastLowPower, ProviderConnection
from repro.net import LOCALHOST, VirtualClock
from repro.rtl import WordMultiplier


def build_mixed_design(width: int, patterns: int):
    """RTL multiplier (behavioural) -> gate-level adder (structural)."""
    a = WordConnector(width)
    b = WordConnector(width)
    product = WordConnector(2 * width)
    offset = WordConnector(2 * width)
    total = WordConnector(2 * width + 1)

    ina = RandomPrimaryInput(width, a, patterns=patterns, seed=5,
                             name="INA")
    inb = RandomPrimaryInput(width, b, patterns=patterns, seed=6,
                             name="INB")
    inc = RandomPrimaryInput(2 * width, offset, patterns=patterns,
                             seed=7, name="INC")
    mult = WordMultiplier(width, a, b, product, name="MULT")

    # The adder is a genuine gate-level netlist wrapped as a module:
    # word connectors outside, event-driven gate evaluation inside.
    adder_netlist = ripple_carry_adder(2 * width, name="adder")
    adder = GateLevelModule(
        adder_netlist,
        input_map={"a": [f"a{i}" for i in range(2 * width)],
                   "b": [f"b{i}" for i in range(2 * width)]},
        output_map={"s": [f"s{i}" for i in range(2 * width + 1)]},
        connectors={"a": product, "b": offset, "s": total},
        name="GLADD")
    out = PrimaryOutput(2 * width + 1, total, name="OUT")
    return Circuit(ina, inb, inc, mult, adder, out, name="mixed"), out


def main() -> None:
    width = 8
    patterns = 40
    circuit, out = build_mixed_design(width, patterns)

    # One multiplier IP for the estimation half of the demo.
    vendor = IPProvider("concurrent.provider")
    vendor.publish_multiplier(width)
    provider = ProviderConnection(vendor, LOCALHOST,
                                  clock=VirtualClock())

    # Mixed-level run: RTL words flow into gate-level addition.
    controller = SimulationController(circuit, name="mixed")
    stats = controller.start()
    sums = [v.value for _t, v in out.trace(controller.context) if v.known]
    print(f"mixed-level run: {stats.events} events, "
          f"last sums {sums[-3:]}")

    # --- concurrent simulations over ONE design instance -----------------
    ip_circuit, mult = _ip_design(width, patterns, provider)

    setup_fast = SetupController(name="datasheet")
    setup_fast.set(AVERAGE_POWER, ByName("constant-power"))
    setup_fast.apply(ip_circuit)

    setup_accurate = SetupController(name="macro-model")
    setup_accurate.set(AVERAGE_POWER, ByName("linreg-power"))
    setup_accurate.apply(ip_circuit)

    run_a = SimulationController(ip_circuit, setup=setup_fast,
                                 name="thread-A")
    run_b = SimulationController(ip_circuit, setup=setup_accurate,
                                 name="thread-B")
    thread_a = run_a.start_async()
    thread_b = run_b.start_async()
    thread_a.join()
    thread_b.join()

    series_a = setup_fast.results.series("MULT", AVERAGE_POWER.name)
    series_b = setup_accurate.results.series("MULT", AVERAGE_POWER.name)
    print(f"\nconcurrent runs on one design: "
          f"{len(series_a)} + {len(series_b)} power samples")
    print(f"  thread-A (constant): every sample identical -> "
          f"{len(set(series_a)) == 1}")
    print(f"  thread-B (regression): activity-dependent -> "
          f"{len(set(round(v, 6) for v in series_b)) > 1}")
    print("  schedulers never interfered: both traces are complete and "
          "the design needed no reset between runs")


def _ip_design(width, patterns, provider):
    a = WordConnector(width)
    b = WordConnector(width)
    o = WordConnector(2 * width)
    ina = RandomPrimaryInput(width, a, patterns=patterns, seed=8,
                             name="INA")
    inb = RandomPrimaryInput(width, b, patterns=patterns, seed=9,
                             name="INB")
    mult = MultFastLowPower(width, a, b, o, provider, name="MULT")
    out = PrimaryOutput(2 * width, o, name="OUT")
    return Circuit(ina, inb, mult, out, name="ip-design"), mult


if __name__ == "__main__":
    main()
